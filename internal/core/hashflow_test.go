package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/flow"
)

func mustNew(t *testing.T, cfg Config) *HashFlow {
	t.Helper()
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func randKey(rng *rand.Rand) flow.Key {
	return flow.Key{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Uint32()),
		DstPort: uint16(rng.Uint32()),
		Proto:   6,
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"defaults ok", Config{MemoryBytes: 1 << 16}, false},
		{"multihash ok", Config{MemoryBytes: 1 << 16, Pipelined: false, Depth: 2}, false},
		{"zero memory", Config{}, true},
		{"negative memory", Config{MemoryBytes: -5}, true},
		{"depth too large", Config{MemoryBytes: 1 << 16, Depth: 20}, true},
		{"bad alpha", Config{MemoryBytes: 1 << 16, Pipelined: true, Alpha: 1.5}, true},
		{"bad digest", Config{MemoryBytes: 1 << 16, DigestBits: 9}, true},
		{"tiny budget", Config{MemoryBytes: 30, Depth: 3}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Errorf("New(%+v) err = %v, wantErr = %v", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	h := mustNew(t, Config{MemoryBytes: 1 << 20, Pipelined: true})
	if got := len(h.TableSizes()); got != DefaultDepth {
		t.Errorf("default depth tables = %d, want %d", got, DefaultDepth)
	}
	// Cell budget: equal cells in main and ancillary at 19 bytes per pair.
	wantCells := (1 << 20) / 19
	if got := h.MainCells(); got != wantCells {
		t.Errorf("MainCells = %d, want %d", got, wantCells)
	}
	if got := h.AncillaryCells(); got != wantCells {
		t.Errorf("AncillaryCells = %d, want %d", got, wantCells)
	}
	if h.MemoryBytes() > 1<<20 {
		t.Errorf("MemoryBytes = %d exceeds budget", h.MemoryBytes())
	}
}

func TestPipelineSizes(t *testing.T) {
	sizes := pipelineSizes(1000, 3, 0.7)
	if len(sizes) != 3 {
		t.Fatalf("got %d tables", len(sizes))
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 1000 {
		t.Errorf("sizes sum to %d, want 1000", total)
	}
	// Geometric decrease by ~alpha.
	if sizes[1] >= sizes[0] || sizes[2] >= sizes[1] {
		t.Errorf("sizes not decreasing: %v", sizes)
	}
	ratio := float64(sizes[2]) / float64(sizes[1])
	if math.Abs(ratio-0.7) > 0.05 {
		t.Errorf("ratio n3/n2 = %.3f, want ~0.7", ratio)
	}
}

func TestPipelineSizesTiny(t *testing.T) {
	// Every sub-table must get at least one bucket even at tiny budgets.
	for _, n := range []int{3, 4, 5, 10} {
		sizes := pipelineSizes(n, 3, 0.5)
		total := 0
		for _, s := range sizes {
			if s < 1 {
				t.Errorf("n=%d: sub-table with %d buckets", n, s)
			}
			total += s
		}
		if total < n {
			t.Errorf("n=%d: sizes %v sum below n", n, sizes)
		}
	}
}

func TestExactCountsNoCollision(t *testing.T) {
	// With far fewer flows than buckets, every count must be exact.
	for _, pipelined := range []bool{true, false} {
		h := mustNew(t, Config{MemoryBytes: 1 << 20, Pipelined: pipelined, Seed: 3})
		rng := rand.New(rand.NewPCG(1, 2))
		truth := make(map[flow.Key]uint32)
		for i := 0; i < 500; i++ {
			k := randKey(rng)
			n := uint32(rng.IntN(50) + 1)
			truth[k] += n
			for j := uint32(0); j < n; j++ {
				h.Update(flow.Packet{Key: k})
			}
		}
		for k, want := range truth {
			if got := h.EstimateSize(k); got != want {
				t.Fatalf("pipelined=%v: EstimateSize(%v) = %d, want %d", pipelined, k, got, want)
			}
		}
		if got := h.Occupied(); got != len(truth) {
			t.Errorf("pipelined=%v: Occupied = %d, want %d", pipelined, got, len(truth))
		}
	}
}

func TestMainTableCountsNeverExceedTruth(t *testing.T) {
	// Main-table records are exact or (rarely, via digest-collision
	// promotion) inflated; without promotion anomalies they must never
	// exceed the true count. We check the strong invariant that holds with
	// promotion disabled.
	h := mustNew(t, Config{MemoryBytes: 10 << 10, Seed: 11, DisablePromotion: true})
	rng := rand.New(rand.NewPCG(5, 6))
	truth := flow.NewTruth(0)
	keys := make([]flow.Key, 2000)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 50000; i++ {
		p := flow.Packet{Key: keys[rng.IntN(len(keys))]}
		truth.Observe(p)
		h.Update(p)
	}
	for _, rec := range h.Records() {
		if real := truth.Count(rec.Key); rec.Count > real {
			t.Fatalf("record %v count %d exceeds true %d", rec.Key, rec.Count, real)
		}
	}
}

func TestRecordsAreExactWithPromotion(t *testing.T) {
	// Even with promotion on, a main-table record never overstates the true
	// count unless an 8-bit digest collision occurred in the ancillary
	// table. With 2K flows and 4K ancillary cells the chance is tiny but
	// nonzero, so allow a small number of inflated records.
	h := mustNew(t, Config{MemoryBytes: 64 << 10, Seed: 12})
	rng := rand.New(rand.NewPCG(7, 8))
	truth := flow.NewTruth(0)
	keys := make([]flow.Key, 2000)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 100000; i++ {
		p := flow.Packet{Key: keys[rng.IntN(len(keys))]}
		truth.Observe(p)
		h.Update(p)
	}
	inflated := 0
	for _, rec := range h.Records() {
		if rec.Count > truth.Count(rec.Key) {
			inflated++
		}
	}
	if frac := float64(inflated) / float64(len(h.Records())); frac > 0.01 {
		t.Errorf("%.2f%% of records inflated, want < 1%%", frac*100)
	}
}

func TestPromotionRescuesElephant(t *testing.T) {
	// Construct a scenario where an elephant collides everywhere and lands
	// in the ancillary table, then grows past the sentinel: it must be
	// promoted into the main table and be reported.
	h := mustNew(t, Config{MemoryBytes: 19 * 8, Seed: 1}) // 8 main cells, 8 ancillary
	rng := rand.New(rand.NewPCG(9, 10))

	// Fill the main table completely with medium flows.
	filler := make([]flow.Key, 0, 64)
	for len(filler) < 64 {
		filler = append(filler, randKey(rng))
	}
	for _, k := range filler {
		for i := 0; i < 5; i++ {
			h.Update(flow.Packet{Key: k})
		}
	}
	if h.Occupied() != h.MainCells() {
		t.Skip("main table not saturated by filler flows; adjust seed")
	}

	// Now hammer one elephant past every sentinel count.
	elephant := randKey(rng)
	for i := 0; i < 100; i++ {
		h.Update(flow.Packet{Key: elephant})
	}
	found := false
	for _, rec := range h.Records() {
		if rec.Key == elephant {
			found = true
		}
	}
	if !found {
		t.Fatal("elephant was never promoted into the main table")
	}
}

func TestPromotionDisabledKeepsElephantOut(t *testing.T) {
	h := mustNew(t, Config{MemoryBytes: 19 * 8, Seed: 1, DisablePromotion: true})
	rng := rand.New(rand.NewPCG(9, 10))
	filler := make([]flow.Key, 0, 64)
	for len(filler) < 64 {
		filler = append(filler, randKey(rng))
	}
	for _, k := range filler {
		for i := 0; i < 5; i++ {
			h.Update(flow.Packet{Key: k})
		}
	}
	if h.Occupied() != h.MainCells() {
		t.Skip("main table not saturated by filler flows; adjust seed")
	}
	elephant := randKey(rng)
	for i := 0; i < 100; i++ {
		h.Update(flow.Packet{Key: elephant})
	}
	for _, rec := range h.Records() {
		if rec.Key == elephant {
			t.Fatal("elephant entered the main table despite disabled promotion")
		}
	}
}

func TestOpStatsBounds(t *testing.T) {
	// Worst case per packet: d main probes + 1 ancillary hash = 4 hashes.
	h := mustNew(t, Config{MemoryBytes: 1 << 12, Seed: 2})
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 10000; i++ {
		h.Update(flow.Packet{Key: randKey(rng)})
	}
	s := h.OpStats()
	if s.Packets != 10000 {
		t.Fatalf("Packets = %d", s.Packets)
	}
	if hp := s.HashesPerPacket(); hp > 4 || hp < 1 {
		t.Errorf("HashesPerPacket = %.2f, want in [1,4]", hp)
	}
}

func TestUtilizationApproachesFull(t *testing.T) {
	// Under heavy overload the collision-resolution strategy should fill
	// nearly all main-table buckets (the paper's "fills up nearly all hash
	// table buckets").
	h := mustNew(t, Config{MemoryBytes: 19 * 4096, Seed: 5})
	rng := rand.New(rand.NewPCG(13, 14))
	for i := 0; i < 8*4096; i++ {
		h.Update(flow.Packet{Key: randKey(rng)})
	}
	if u := h.Utilization(); u < 0.95 {
		t.Errorf("utilization %.3f under 8x overload, want > 0.95", u)
	}
}

func TestCardinalityEstimate(t *testing.T) {
	h := mustNew(t, Config{MemoryBytes: 1 << 20, Seed: 6})
	rng := rand.New(rand.NewPCG(15, 16))
	const n = 20000
	for i := 0; i < n; i++ {
		k := randKey(rng)
		h.Update(flow.Packet{Key: k})
		h.Update(flow.Packet{Key: k})
	}
	est := h.EstimateCardinality()
	if math.Abs(est/n-1) > 0.15 {
		t.Errorf("cardinality estimate %.0f for %d flows", est, n)
	}
}

func TestReset(t *testing.T) {
	h := mustNew(t, Config{MemoryBytes: 1 << 12, Seed: 7})
	rng := rand.New(rand.NewPCG(17, 18))
	for i := 0; i < 1000; i++ {
		h.Update(flow.Packet{Key: randKey(rng)})
	}
	h.Reset()
	if h.Occupied() != 0 {
		t.Error("Reset left occupied buckets")
	}
	if h.OpStats() != (flow.OpStats{}) {
		t.Error("Reset left op stats")
	}
	if len(h.Records()) != 0 {
		t.Error("Reset left records")
	}
}

func TestEstimateSizeUnknownFlow(t *testing.T) {
	h := mustNew(t, Config{MemoryBytes: 1 << 12, Seed: 8})
	if got := h.EstimateSize(flow.Key{SrcIP: 42}); got != 0 {
		t.Errorf("EstimateSize of unseen flow = %d, want 0", got)
	}
}

func TestUpdateNeverLosesCurrentFlowEntirely(t *testing.T) {
	// Property: immediately after updating with packet p, the flow is
	// either in the main table, or the ancillary cell it maps to holds its
	// digest (Algorithm 1 always stores the packet somewhere).
	h := mustNew(t, Config{MemoryBytes: 19 * 256, Seed: 9})
	f := func(src, dst uint32, sp, dp uint16) bool {
		k := flow.Key{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: 17}
		h.Update(flow.Packet{Key: k})
		return h.EstimateSize(k) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRecordsMatchOccupied(t *testing.T) {
	h := mustNew(t, Config{MemoryBytes: 1 << 14, Seed: 10})
	rng := rand.New(rand.NewPCG(19, 20))
	for i := 0; i < 5000; i++ {
		h.Update(flow.Packet{Key: randKey(rng)})
	}
	if got, want := len(h.Records()), h.Occupied(); got != want {
		t.Errorf("len(Records) = %d, Occupied = %d", got, want)
	}
}

func TestMultihashVsPipelinedBothWork(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"multihash d1", Config{MemoryBytes: 1 << 14, Depth: 1, Pipelined: false}},
		{"multihash d4", Config{MemoryBytes: 1 << 14, Depth: 4, Pipelined: false}},
		{"pipelined a0.5", Config{MemoryBytes: 1 << 14, Pipelined: true, Alpha: 0.5}},
		{"pipelined a0.8", Config{MemoryBytes: 1 << 14, Pipelined: true, Alpha: 0.8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := mustNew(t, tc.cfg)
			rng := rand.New(rand.NewPCG(21, 22))
			k := randKey(rng)
			for i := 0; i < 10; i++ {
				h.Update(flow.Packet{Key: k})
			}
			if got := h.EstimateSize(k); got != 10 {
				t.Errorf("EstimateSize = %d, want 10", got)
			}
		})
	}
}
