package elastic

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/flow"
)

func mustNew(t *testing.T, cfg Config) *Elastic {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randKey(rng *rand.Rand) flow.Key {
	return flow.Key{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), DstPort: uint16(rng.Uint32()), Proto: 6}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted zero memory")
	}
	if _, err := New(Config{MemoryBytes: 1 << 12, SubTables: 9}); err == nil {
		t.Error("accepted 9 sub-tables")
	}
	if _, err := New(Config{MemoryBytes: 1 << 12, Lambda: -1}); err == nil {
		t.Error("accepted negative lambda")
	}
	if _, err := New(Config{MemoryBytes: 10}); err == nil {
		t.Error("accepted budget below one cell")
	}
}

func TestDefaults(t *testing.T) {
	e := mustNew(t, Config{MemoryBytes: 1 << 20})
	if got := len(e.heavy); got != DefaultSubTables {
		t.Errorf("sub-tables = %d, want %d", got, DefaultSubTables)
	}
	if e.cfg.Lambda != DefaultLambda {
		t.Errorf("lambda = %d, want %d", e.cfg.Lambda, DefaultLambda)
	}
	if e.MemoryBytes() > 1<<20 {
		t.Errorf("MemoryBytes = %d exceeds budget", e.MemoryBytes())
	}
	// Heavy and light cell counts match (paper setup).
	if e.HeavyCells() > e.light.Width() {
		t.Errorf("heavy cells %d exceed light cells %d", e.HeavyCells(), e.light.Width())
	}
}

func TestSingleFlowExact(t *testing.T) {
	e := mustNew(t, Config{MemoryBytes: 1 << 16, Seed: 1})
	k := flow.Key{SrcIP: 1, DstIP: 2, Proto: 6}
	for i := 0; i < 500; i++ {
		e.Update(flow.Packet{Key: k})
	}
	if got := e.EstimateSize(k); got != 500 {
		t.Errorf("EstimateSize = %d, want 500", got)
	}
}

func TestSparseFlowsExact(t *testing.T) {
	e := mustNew(t, Config{MemoryBytes: 1 << 18, Seed: 2})
	rng := rand.New(rand.NewPCG(1, 2))
	truth := make(map[flow.Key]uint32)
	for i := 0; i < 300; i++ {
		k := randKey(rng)
		n := uint32(rng.IntN(30) + 1)
		truth[k] += n
		for j := uint32(0); j < n; j++ {
			e.Update(flow.Packet{Key: k})
		}
	}
	for k, want := range truth {
		if got := e.EstimateSize(k); got != want {
			t.Errorf("EstimateSize(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestEvictionToLightPart(t *testing.T) {
	// Overload a tiny heavy part so evictions must happen; evicted flows
	// should still be estimable via the light part.
	e := mustNew(t, Config{MemoryBytes: 23 * 32, Seed: 3})
	rng := rand.New(rand.NewPCG(3, 4))
	truth := make(map[flow.Key]uint32)
	keys := make([]flow.Key, 200)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 20000; i++ {
		k := keys[rng.IntN(len(keys))]
		truth[k]++
		e.Update(flow.Packet{Key: k})
	}
	// Every flow must have a nonzero estimate: heavy or light.
	zero := 0
	for k := range truth {
		if e.EstimateSize(k) == 0 {
			zero++
		}
	}
	if frac := float64(zero) / float64(len(truth)); frac > 0.05 {
		t.Errorf("%.1f%% of flows have zero estimate", frac*100)
	}
}

func TestNeverUnderestimatesWhenSaturationFree(t *testing.T) {
	// ElasticSketch estimates = heavy exact + light CM (overestimate), so
	// as long as 8-bit light counters don't saturate, estimate >= truth
	// only holds for flows still fully in the heavy part; flows split
	// between parts can undercount if counters saturate. Use small counts
	// to avoid saturation and check estimate >= true.
	e := mustNew(t, Config{MemoryBytes: 23 * 64, Seed: 4})
	rng := rand.New(rand.NewPCG(5, 6))
	truth := make(map[flow.Key]uint32)
	keys := make([]flow.Key, 300)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 5000; i++ {
		k := keys[rng.IntN(len(keys))]
		truth[k]++
		e.Update(flow.Packet{Key: k})
	}
	under := 0
	for k, want := range truth {
		if e.EstimateSize(k) < want {
			under++
		}
	}
	if frac := float64(under) / float64(len(truth)); frac > 0.10 {
		t.Errorf("%.1f%% of flows underestimated, want < 10%%", frac*100)
	}
}

func TestRecordsComeFromHeavyPart(t *testing.T) {
	e := mustNew(t, Config{MemoryBytes: 23 * 128, Seed: 5})
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 10000; i++ {
		e.Update(flow.Packet{Key: randKey(rng)})
	}
	recs := e.Records()
	if len(recs) == 0 {
		t.Fatal("no records reported")
	}
	if len(recs) > e.HeavyCells() {
		t.Errorf("%d records exceed %d heavy cells", len(recs), e.HeavyCells())
	}
	for _, r := range recs {
		if r.Count == 0 {
			t.Error("record with zero count")
		}
	}
}

func TestCardinality(t *testing.T) {
	e := mustNew(t, Config{MemoryBytes: 1 << 20, Seed: 6})
	rng := rand.New(rand.NewPCG(9, 10))
	const n = 20000
	for i := 0; i < n; i++ {
		e.Update(flow.Packet{Key: randKey(rng)})
	}
	est := e.EstimateCardinality()
	if math.Abs(est/n-1) > 0.15 {
		t.Errorf("cardinality estimate %.0f for %d flows", est, n)
	}
}

func TestOpStatsBounds(t *testing.T) {
	e := mustNew(t, Config{MemoryBytes: 1 << 12, Seed: 7})
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 5000; i++ {
		e.Update(flow.Packet{Key: randKey(rng)})
	}
	s := e.OpStats()
	if s.Packets != 5000 {
		t.Fatalf("Packets = %d", s.Packets)
	}
	if hpp := s.HashesPerPacket(); hpp < 1 || hpp > 4 {
		t.Errorf("HashesPerPacket = %.2f, want in [1,4]", hpp)
	}
}

func TestReset(t *testing.T) {
	e := mustNew(t, Config{MemoryBytes: 1 << 12, Seed: 8})
	rng := rand.New(rand.NewPCG(13, 14))
	for i := 0; i < 1000; i++ {
		e.Update(flow.Packet{Key: randKey(rng)})
	}
	e.Reset()
	if len(e.Records()) != 0 || e.OpStats() != (flow.OpStats{}) {
		t.Error("Reset incomplete")
	}
	if got := e.EstimateCardinality(); got != 0 {
		t.Errorf("cardinality after Reset = %v, want 0", got)
	}
}

func TestLambdaControlsEviction(t *testing.T) {
	// With an enormous lambda, eviction never happens: an incumbent with
	// one vote survives arbitrarily many misses.
	e := mustNew(t, Config{MemoryBytes: 23 * 4, Lambda: 1 << 20, Seed: 9})
	incumbent := flow.Key{SrcIP: 1, Proto: 6}
	e.Update(flow.Packet{Key: incumbent})
	rng := rand.New(rand.NewPCG(15, 16))
	for i := 0; i < 10000; i++ {
		e.Update(flow.Packet{Key: randKey(rng)})
	}
	found := false
	for _, r := range e.Records() {
		if r.Key == incumbent {
			found = true
		}
	}
	if !found {
		t.Error("incumbent evicted despite huge lambda")
	}
}
