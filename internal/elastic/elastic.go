// Package elastic implements the hardware version of ElasticSketch (Yang et
// al., SIGCOMM 2018) as parameterized in the HashFlow paper's evaluation:
// a heavy part of 3 sub-tables holding (key, vote+, vote−, flag) buckets
// with λ-ratio eviction, and a light part that is a single-array count-min
// sketch of 8-bit counters with the same number of cells as the heavy part.
package elastic

import (
	"fmt"

	"repro/flow"
	"repro/internal/hashing"
	"repro/internal/sketch"
)

// Defaults from the papers: 3 heavy sub-tables, eviction threshold λ = 8.
const (
	DefaultSubTables = 3
	DefaultLambda    = 8
)

// HeavyCellBytes is the size of one heavy bucket: 104-bit key, 32-bit
// vote+, 32-bit vote−, and a flag byte.
const HeavyCellBytes = flow.KeyBytes + 4 + 4 + 1

// LightCellBytes is the size of one light counter (8 bits).
const LightCellBytes = 1

// Config parameterizes an ElasticSketch instance.
type Config struct {
	// MemoryBytes is the total budget. Heavy and light parts get the same
	// number of cells, so a budget B yields B/23 cells each.
	MemoryBytes int
	// SubTables is the number of heavy sub-tables (default 3).
	SubTables int
	// Lambda is the eviction threshold: a bucket's incumbent is evicted to
	// the light part when vote− ≥ λ·vote+ (default 8).
	Lambda int
	// Seed makes the hash family deterministic.
	Seed uint64
}

type heavyBucket struct {
	key       flow.Key
	votePlus  uint32
	voteMinus uint32
	flag      bool // true if the flow may also have packets in the light part
}

// Elastic is the hardware-version ElasticSketch.
type Elastic struct {
	cfg    Config
	heavy  [][]heavyBucket
	light  *sketch.CountMin
	family *hashing.Family
	ops    flow.OpStats
}

// New builds an ElasticSketch with cfg, applying defaults for unset fields.
func New(cfg Config) (*Elastic, error) {
	if cfg.SubTables == 0 {
		cfg.SubTables = DefaultSubTables
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = DefaultLambda
	}
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("elastic: memory budget must be positive, got %d", cfg.MemoryBytes)
	}
	if cfg.SubTables < 1 || cfg.SubTables > 8 {
		return nil, fmt.Errorf("elastic: sub-tables must be in [1,8], got %d", cfg.SubTables)
	}
	if cfg.Lambda < 1 {
		return nil, fmt.Errorf("elastic: lambda must be positive, got %d", cfg.Lambda)
	}
	cells := cfg.MemoryBytes / (HeavyCellBytes + LightCellBytes)
	per := cells / cfg.SubTables
	if per < 1 {
		return nil, fmt.Errorf("elastic: budget of %d bytes leaves no heavy cells", cfg.MemoryBytes)
	}
	light, err := sketch.NewCountMin(1, cells, 8, cfg.Seed^0xE1A5)
	if err != nil {
		return nil, fmt.Errorf("elastic: light part: %w", err)
	}
	e := &Elastic{
		cfg:    cfg,
		heavy:  make([][]heavyBucket, cfg.SubTables),
		light:  light,
		family: hashing.NewFamily(cfg.SubTables, cfg.Seed),
	}
	for i := range e.heavy {
		e.heavy[i] = make([]heavyBucket, per)
	}
	return e, nil
}

// Update processes one packet: try each heavy sub-table for an empty or
// matching bucket; on total miss, vote against the smallest colliding
// bucket and either spill the packet to the light part or evict the
// incumbent when the vote ratio reaches λ.
func (e *Elastic) Update(p flow.Packet) {
	e.ops.Packets++
	w1, w2 := p.Key.Words()

	var minB *heavyBucket
	for s := range e.heavy {
		idx := e.family.Bucket(s, w1, w2, uint64(len(e.heavy[s])))
		e.ops.Hashes++
		e.ops.MemAccesses++
		b := &e.heavy[s][idx]
		if b.votePlus == 0 {
			*b = heavyBucket{key: p.Key, votePlus: 1}
			e.ops.MemAccesses++
			return
		}
		if b.key == p.Key {
			b.votePlus++
			e.ops.MemAccesses++
			return
		}
		if minB == nil || b.votePlus < minB.votePlus {
			minB = b
		}
	}

	minB.voteMinus++
	e.ops.MemAccesses++
	if minB.voteMinus >= uint32(e.cfg.Lambda)*minB.votePlus {
		// Evict the incumbent to the light part; the incoming flow takes
		// the bucket with flag set, since its earlier packets (this one
		// included) may live in the light part.
		ew1, ew2 := minB.key.Words()
		e.light.Add(ew1, ew2, minB.votePlus)
		e.ops.Hashes++
		*minB = heavyBucket{key: p.Key, votePlus: 1, voteMinus: 1, flag: true}
		e.ops.MemAccesses++
		return
	}
	// No eviction: the packet itself goes to the light part.
	e.light.Add(w1, w2, 1)
	e.ops.Hashes++
	e.ops.MemAccesses += 2
}

// UpdateBatch processes pkts in order with the same semantics as repeated
// Update calls, hoisting the sub-table slice headers and the λ threshold
// out of the packet loop and flushing operation counters once per batch.
func (e *Elastic) UpdateBatch(pkts []flow.Packet) {
	var ops flow.OpStats
	heavy := e.heavy
	lambda := uint32(e.cfg.Lambda)

outer:
	for pi := range pkts {
		p := &pkts[pi]
		ops.Packets++
		w1, w2 := p.Key.Words()

		var minB *heavyBucket
		for s := range heavy {
			idx := e.family.Bucket(s, w1, w2, uint64(len(heavy[s])))
			ops.Hashes++
			ops.MemAccesses++
			b := &heavy[s][idx]
			if b.votePlus == 0 {
				*b = heavyBucket{key: p.Key, votePlus: 1}
				ops.MemAccesses++
				continue outer
			}
			if b.key == p.Key {
				b.votePlus++
				ops.MemAccesses++
				continue outer
			}
			if minB == nil || b.votePlus < minB.votePlus {
				minB = b
			}
		}

		minB.voteMinus++
		ops.MemAccesses++
		if minB.voteMinus >= lambda*minB.votePlus {
			ew1, ew2 := minB.key.Words()
			e.light.Add(ew1, ew2, minB.votePlus)
			ops.Hashes++
			*minB = heavyBucket{key: p.Key, votePlus: 1, voteMinus: 1, flag: true}
			ops.MemAccesses++
			continue
		}
		e.light.Add(w1, w2, 1)
		ops.Hashes++
		ops.MemAccesses += 2
	}
	e.ops = e.ops.Add(ops)
}

// EstimateSize returns vote+ for heavy-part flows (plus the light estimate
// when the flag indicates spilled packets), or the light estimate alone.
func (e *Elastic) EstimateSize(k flow.Key) uint32 {
	w1, w2 := k.Words()
	for s := range e.heavy {
		idx := e.family.Bucket(s, w1, w2, uint64(len(e.heavy[s])))
		if b := e.heavy[s][idx]; b.votePlus > 0 && b.key == k {
			if b.flag {
				return b.votePlus + e.light.Estimate(w1, w2)
			}
			return b.votePlus
		}
	}
	return e.light.Estimate(w1, w2)
}

// Records reports every heavy-part flow with its estimated size. Light-part
// flows have no stored keys and cannot be enumerated.
func (e *Elastic) Records() []flow.Record {
	return e.AppendRecords(nil)
}

// AppendRecords appends every heavy-part flow with its estimated size to
// dst and returns the extended slice, allocating only when dst lacks
// capacity.
func (e *Elastic) AppendRecords(dst []flow.Record) []flow.Record {
	for _, t := range e.heavy {
		for _, b := range t {
			if b.votePlus == 0 {
				continue
			}
			count := b.votePlus
			if b.flag {
				w1, w2 := b.key.Words()
				count += e.light.Estimate(w1, w2)
			}
			dst = append(dst, flow.Record{Key: b.key, Count: count})
		}
	}
	return dst
}

// EstimateCardinality combines the heavy-part occupancy with linear
// counting over the light array, the estimator §IV-A attributes to
// ElasticSketch.
func (e *Elastic) EstimateCardinality() float64 {
	occupied := 0
	for _, t := range e.heavy {
		for _, b := range t {
			if b.votePlus > 0 {
				occupied++
			}
		}
	}
	return float64(occupied) + e.light.EstimateCardinality()
}

// MemoryBytes returns the combined footprint of both parts.
func (e *Elastic) MemoryBytes() int {
	cells := 0
	for _, t := range e.heavy {
		cells += len(t)
	}
	return cells*HeavyCellBytes + e.light.MemoryBytes()
}

// HeavyCells returns the total number of heavy buckets.
func (e *Elastic) HeavyCells() int {
	n := 0
	for _, t := range e.heavy {
		n += len(t)
	}
	return n
}

// OpStats returns cumulative operation counts since the last Reset.
func (e *Elastic) OpStats() flow.OpStats { return e.ops }

// Reset clears both parts and the counters.
func (e *Elastic) Reset() {
	for _, t := range e.heavy {
		for i := range t {
			t[i] = heavyBucket{}
		}
	}
	e.light.Reset()
	e.ops = flow.OpStats{}
}
