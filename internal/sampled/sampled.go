// Package sampled implements classic sampled NetFlow, the traditional
// solution the paper's introduction discusses: only one in Rate packets is
// processed, and per-flow counts are scaled back up by the sampling rate.
// It trades accuracy for processing cost — exactly the trade-off HashFlow
// is designed to avoid — and serves as a reference comparator.
package sampled

import (
	"fmt"
	"math/rand/v2"

	"repro/flow"
)

// DefaultRate is the default 1-in-N packet sampling rate.
const DefaultRate = 100

// CellBytes approximates the flow-cache cost of one entry: a 104-bit key
// plus a 32-bit count (hash-map overhead is not charged, mirroring how
// routers size their flow caches).
const CellBytes = flow.KeyBytes + 4

// Config parameterizes a sampled NetFlow recorder.
type Config struct {
	// MemoryBytes bounds the flow cache: MemoryBytes/17 entries.
	MemoryBytes int
	// Rate samples one in Rate packets (default 100). Rate 1 disables
	// sampling and yields exact NetFlow (memory permitting).
	Rate int
	// Seed drives the sampling decisions.
	Seed uint64
}

// Recorder is a bounded flow cache fed by packet sampling. When the cache
// is full, new flows are dropped — the behaviour of a router whose flow
// cache overflows within an export epoch.
type Recorder struct {
	cfg      Config
	capacity int
	counts   map[flow.Key]uint32
	rng      *rand.Rand
	ops      flow.OpStats
	sampled  uint64
	dropped  uint64
}

// New builds a sampled NetFlow recorder.
func New(cfg Config) (*Recorder, error) {
	if cfg.Rate == 0 {
		cfg.Rate = DefaultRate
	}
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("sampled: memory budget must be positive, got %d", cfg.MemoryBytes)
	}
	if cfg.Rate < 1 {
		return nil, fmt.Errorf("sampled: rate must be >= 1, got %d", cfg.Rate)
	}
	capacity := cfg.MemoryBytes / CellBytes
	if capacity < 1 {
		return nil, fmt.Errorf("sampled: budget of %d bytes holds no cache entries", cfg.MemoryBytes)
	}
	return &Recorder{
		cfg:      cfg,
		capacity: capacity,
		counts:   make(map[flow.Key]uint32, capacity),
		rng:      rand.New(rand.NewPCG(cfg.Seed, 0x5a3d)),
	}, nil
}

// Rate returns the configured sampling rate.
func (r *Recorder) Rate() int { return r.cfg.Rate }

// Capacity returns the flow-cache entry bound.
func (r *Recorder) Capacity() int { return r.capacity }

// Sampled returns how many packets passed the sampler.
func (r *Recorder) Sampled() uint64 { return r.sampled }

// Dropped returns how many sampled packets of new flows were discarded
// because the cache was full.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Update samples the packet; a hit updates the flow cache.
func (r *Recorder) Update(p flow.Packet) {
	r.ops.Packets++
	if r.cfg.Rate > 1 && r.rng.IntN(r.cfg.Rate) != 0 {
		return
	}
	r.sampled++
	r.ops.MemAccesses++
	if _, ok := r.counts[p.Key]; !ok && len(r.counts) >= r.capacity {
		r.dropped++
		return
	}
	r.counts[p.Key]++
	r.ops.MemAccesses++
}

// UpdateBatch processes pkts in order with the same semantics as repeated
// Update calls — the sampler consumes RNG draws in identical order — while
// hoisting the rate check and batching the statistics writes. Most packets
// fail the sampler, so the batched loop is little more than RNG draws.
func (r *Recorder) UpdateBatch(pkts []flow.Packet) {
	var ops flow.OpStats
	rate := r.cfg.Rate
	for pi := range pkts {
		ops.Packets++
		if rate > 1 && r.rng.IntN(rate) != 0 {
			continue
		}
		r.sampled++
		ops.MemAccesses++
		k := pkts[pi].Key
		if _, ok := r.counts[k]; !ok && len(r.counts) >= r.capacity {
			r.dropped++
			continue
		}
		r.counts[k]++
		ops.MemAccesses++
	}
	r.ops = r.ops.Add(ops)
}

// EstimateSize returns the sampled count scaled by the sampling rate, the
// standard NetFlow inversion.
func (r *Recorder) EstimateSize(k flow.Key) uint32 {
	c, ok := r.counts[k]
	if !ok {
		return 0
	}
	est := uint64(c) * uint64(r.cfg.Rate)
	if est > 0xFFFFFFFF {
		est = 0xFFFFFFFF
	}
	return uint32(est)
}

// Records reports one record per cached flow with rate-scaled counts.
func (r *Recorder) Records() []flow.Record {
	return r.AppendRecords(make([]flow.Record, 0, len(r.counts)))
}

// AppendRecords appends one record per cached flow with rate-scaled counts
// to dst and returns the extended slice, scaling directly from the cached
// value instead of re-querying the map per flow.
func (r *Recorder) AppendRecords(dst []flow.Record) []flow.Record {
	for k, c := range r.counts {
		est := uint64(c) * uint64(r.cfg.Rate)
		if est > 0xFFFFFFFF {
			est = 0xFFFFFFFF
		}
		dst = append(dst, flow.Record{Key: k, Count: uint32(est)})
	}
	return dst
}

// EstimateCardinality scales the distinct sampled-flow count by the rate.
// This simple inversion is only unbiased for single-packet flows; its bias
// on skewed traffic is precisely the weakness of sampling the paper cites
// (enhanced estimators exist but need the flow size distribution).
func (r *Recorder) EstimateCardinality() float64 {
	return float64(len(r.counts)) * float64(r.cfg.Rate)
}

// MemoryBytes returns the configured cache footprint.
func (r *Recorder) MemoryBytes() int { return r.capacity * CellBytes }

// OpStats returns cumulative operation counts since the last Reset.
// Sampling's entire appeal is visible here: most packets cost nothing.
func (r *Recorder) OpStats() flow.OpStats { return r.ops }

// Reset clears the cache and counters.
func (r *Recorder) Reset() {
	r.counts = make(map[flow.Key]uint32, r.capacity)
	r.ops = flow.OpStats{}
	r.sampled = 0
	r.dropped = 0
}
