package sampled

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/flow"
)

func mustNew(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randKey(rng *rand.Rand) flow.Key {
	return flow.Key{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), Proto: 6}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted zero memory")
	}
	if _, err := New(Config{MemoryBytes: 1 << 12, Rate: -1}); err == nil {
		t.Error("accepted negative rate")
	}
	if _, err := New(Config{MemoryBytes: 5}); err == nil {
		t.Error("accepted budget below one entry")
	}
}

func TestRateOneIsExact(t *testing.T) {
	r := mustNew(t, Config{MemoryBytes: 1 << 16, Rate: 1, Seed: 1})
	k := flow.Key{SrcIP: 1, Proto: 6}
	for i := 0; i < 123; i++ {
		r.Update(flow.Packet{Key: k})
	}
	if got := r.EstimateSize(k); got != 123 {
		t.Errorf("rate-1 estimate = %d, want 123", got)
	}
	if r.Sampled() != 123 {
		t.Errorf("Sampled = %d", r.Sampled())
	}
}

func TestSamplingScalesEstimates(t *testing.T) {
	const rate = 10
	r := mustNew(t, Config{MemoryBytes: 1 << 20, Rate: rate, Seed: 2})
	k := flow.Key{SrcIP: 9, Proto: 6}
	const pkts = 100000
	for i := 0; i < pkts; i++ {
		r.Update(flow.Packet{Key: k})
	}
	est := float64(r.EstimateSize(k))
	if math.Abs(est/pkts-1) > 0.1 {
		t.Errorf("estimate %v for %d packets at rate %d", est, pkts, rate)
	}
	// Roughly 1/rate of packets should be sampled.
	if s := float64(r.Sampled()); math.Abs(s/(pkts/rate)-1) > 0.2 {
		t.Errorf("sampled %v of %d packets at rate %d", s, pkts, rate)
	}
}

func TestSmallFlowsMissed(t *testing.T) {
	// At rate 100, most single-packet flows are invisible — sampling's
	// core weakness.
	r := mustNew(t, Config{MemoryBytes: 1 << 20, Rate: 100, Seed: 3})
	rng := rand.New(rand.NewPCG(1, 2))
	keys := make([]flow.Key, 5000)
	for i := range keys {
		keys[i] = randKey(rng)
		r.Update(flow.Packet{Key: keys[i]})
	}
	missed := 0
	for _, k := range keys {
		if r.EstimateSize(k) == 0 {
			missed++
		}
	}
	if frac := float64(missed) / float64(len(keys)); frac < 0.9 {
		t.Errorf("only %.2f of single-packet flows missed at rate 100, want > 0.9", frac)
	}
}

func TestCacheBound(t *testing.T) {
	r := mustNew(t, Config{MemoryBytes: CellBytes * 100, Rate: 1, Seed: 4})
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 1000; i++ {
		r.Update(flow.Packet{Key: randKey(rng)})
	}
	if got := len(r.Records()); got != 100 {
		t.Errorf("cache holds %d flows, capacity 100", got)
	}
	if r.Dropped() != 900 {
		t.Errorf("Dropped = %d, want 900", r.Dropped())
	}
}

func TestCardinalityInversion(t *testing.T) {
	// With single-packet flows, distinct x rate is an unbiased estimator.
	const flows = 20000
	r := mustNew(t, Config{MemoryBytes: 1 << 20, Rate: 10, Seed: 5})
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < flows; i++ {
		r.Update(flow.Packet{Key: randKey(rng)})
	}
	est := r.EstimateCardinality()
	if math.Abs(est/flows-1) > 0.15 {
		t.Errorf("cardinality estimate %.0f for %d single-packet flows", est, flows)
	}
}

func TestOpStatsCheap(t *testing.T) {
	r := mustNew(t, Config{MemoryBytes: 1 << 16, Rate: 100, Seed: 6})
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 10000; i++ {
		r.Update(flow.Packet{Key: randKey(rng)})
	}
	s := r.OpStats()
	if s.Packets != 10000 {
		t.Fatalf("Packets = %d", s.Packets)
	}
	if s.Hashes != 0 {
		t.Errorf("Hashes = %d, want 0 (map-based)", s.Hashes)
	}
	// ~1% of packets touch memory.
	if mpp := s.MemAccessesPerPacket(); mpp > 0.1 {
		t.Errorf("MemAccessesPerPacket = %.3f, want ~0.02", mpp)
	}
}

func TestEstimateSaturates(t *testing.T) {
	r := mustNew(t, Config{MemoryBytes: 1 << 12, Rate: 1 << 30, Seed: 7})
	k := flow.Key{SrcIP: 1}
	// Force a sample by trying many packets.
	for i := 0; i < 1<<20; i++ {
		r.Update(flow.Packet{Key: k})
		if r.Sampled() > 4 {
			break
		}
	}
	if r.Sampled() > 0 {
		if got := r.EstimateSize(k); got != 0xFFFFFFFF {
			t.Errorf("scaled estimate = %d, want saturation", got)
		}
	}
}

func TestReset(t *testing.T) {
	r := mustNew(t, Config{MemoryBytes: 1 << 12, Rate: 1, Seed: 8})
	r.Update(flow.Packet{Key: flow.Key{SrcIP: 1}})
	r.Reset()
	if len(r.Records()) != 0 || r.OpStats() != (flow.OpStats{}) || r.Sampled() != 0 {
		t.Error("Reset incomplete")
	}
}
