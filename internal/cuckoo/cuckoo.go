// Package cuckoo implements a flow table with bucketized cuckoo hashing
// (two hash functions, 4-way buckets) and a bounded kick chain. The
// paper's §II dismisses cuckoo hashing for line-rate flow recording because
// insertion time is unbounded in the worst case; this implementation caps
// the displacement chain at MaxKicks and discards the record left in hand
// when the cap is hit, making the cost bounded but lossy. It exists as a
// comparator that demonstrates exactly that trade-off against HashFlow's
// never-evict main table.
package cuckoo

import (
	"fmt"
	"math/rand/v2"

	"repro/flow"
	"repro/internal/hashing"
)

// Defaults: two hash functions, 4-way buckets (the standard bucketized
// layout, load threshold ~95%), and a 32-displacement cap.
const (
	DefaultMaxKicks = 32
	numTables       = 2
	// BucketSlots is the set-associativity of each bucket.
	BucketSlots = 4
)

// CellBytes is the size of one record: 104-bit key plus 32-bit count.
const CellBytes = flow.KeyBytes + 4

// Config parameterizes a cuckoo flow table.
type Config struct {
	// MemoryBytes bounds the table: MemoryBytes/17 cells split across the
	// two sub-tables.
	MemoryBytes int
	// MaxKicks caps the displacement chain per insertion (default 32).
	MaxKicks int
	// Seed makes hashing and victim selection deterministic.
	Seed uint64
}

type cell struct {
	key   flow.Key
	count uint32
}

// Table is a two-choice, 4-way bucketized cuckoo hash table of flow
// records.
type Table struct {
	cfg     Config
	tables  [numTables][]cell // each a multiple of BucketSlots
	buckets uint64            // buckets per table
	family  *hashing.Family
	rng     *rand.Rand
	ops     flow.OpStats
	evicted uint64 // records discarded at the kick cap
}

// New builds a cuckoo flow table.
func New(cfg Config) (*Table, error) {
	if cfg.MaxKicks == 0 {
		cfg.MaxKicks = DefaultMaxKicks
	}
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("cuckoo: memory budget must be positive, got %d", cfg.MemoryBytes)
	}
	if cfg.MaxKicks < 1 {
		return nil, fmt.Errorf("cuckoo: max kicks must be >= 1, got %d", cfg.MaxKicks)
	}
	bucketsPerTable := cfg.MemoryBytes / CellBytes / numTables / BucketSlots
	if bucketsPerTable < 1 {
		return nil, fmt.Errorf("cuckoo: budget of %d bytes holds no buckets", cfg.MemoryBytes)
	}
	t := &Table{
		cfg:     cfg,
		buckets: uint64(bucketsPerTable),
		family:  hashing.NewFamily(numTables, cfg.Seed),
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0xC0C0)),
	}
	for i := range t.tables {
		t.tables[i] = make([]cell, bucketsPerTable*BucketSlots)
	}
	return t, nil
}

// bucket returns the slot slice of the key's bucket in the given table.
func (t *Table) bucket(table int, k flow.Key) []cell {
	w1, w2 := k.Words()
	return t.bucketW(table, w1, w2)
}

// bucketW is bucket with the key already packed, so batched callers pack
// each key once instead of once per candidate table.
func (t *Table) bucketW(table int, w1, w2 uint64) []cell {
	b := t.family.Bucket(table, w1, w2, t.buckets)
	return t.tables[table][b*BucketSlots : (b+1)*BucketSlots]
}

// Update processes one packet: increment on hit, insert into a free slot,
// otherwise displace along the cuckoo chain up to MaxKicks.
func (t *Table) Update(p flow.Packet) {
	t.ops.Packets++

	// Fast path: hit or free slot in either candidate bucket.
	for i := 0; i < numTables; i++ {
		t.ops.Hashes++
		b := t.bucket(i, p.Key)
		t.ops.MemAccesses++ // one bucket read
		for s := range b {
			if b[s].count > 0 && b[s].key == p.Key {
				b[s].count++
				t.ops.MemAccesses++
				return
			}
		}
		for s := range b {
			if b[s].count == 0 {
				b[s] = cell{key: p.Key, count: 1}
				t.ops.MemAccesses++
				return
			}
		}
	}

	// Both candidate buckets are full of other flows: displace.
	carried := cell{key: p.Key, count: 1}
	table := t.rng.IntN(numTables)
	for kick := 0; kick < t.cfg.MaxKicks; kick++ {
		t.ops.Hashes++
		b := t.bucket(table, carried.key)
		t.ops.MemAccesses += 2
		victim := t.rng.IntN(BucketSlots)
		carried, b[victim] = b[victim], carried
		if carried.count == 0 {
			return // displaced into a hole
		}
		// The displaced record's alternate bucket is in the other table.
		table = 1 - table
		// If the alternate bucket has room, settle there.
		alt := t.bucket(table, carried.key)
		t.ops.Hashes++
		t.ops.MemAccesses++
		for s := range alt {
			if alt[s].count == 0 {
				alt[s] = carried
				t.ops.MemAccesses++
				return
			}
		}
	}
	// Kick cap reached: the record in hand — and its whole count — is lost.
	t.evicted++
}

// UpdateBatch processes pkts in order with the same semantics as repeated
// Update calls — RNG draws for displacement happen in identical order —
// packing each key into its two hash words once per packet instead of once
// per candidate bucket, and batching the statistics writes.
func (t *Table) UpdateBatch(pkts []flow.Packet) {
	var ops flow.OpStats

outer:
	for pi := range pkts {
		p := &pkts[pi]
		ops.Packets++
		w1, w2 := p.Key.Words()

		for i := 0; i < numTables; i++ {
			ops.Hashes++
			b := t.bucketW(i, w1, w2)
			ops.MemAccesses++
			for s := range b {
				if b[s].count > 0 && b[s].key == p.Key {
					b[s].count++
					ops.MemAccesses++
					continue outer
				}
			}
			for s := range b {
				if b[s].count == 0 {
					b[s] = cell{key: p.Key, count: 1}
					ops.MemAccesses++
					continue outer
				}
			}
		}

		carried := cell{key: p.Key, count: 1}
		cw1, cw2 := w1, w2
		table := t.rng.IntN(numTables)
		for kick := 0; kick < t.cfg.MaxKicks; kick++ {
			ops.Hashes++
			b := t.bucketW(table, cw1, cw2)
			ops.MemAccesses += 2
			victim := t.rng.IntN(BucketSlots)
			carried, b[victim] = b[victim], carried
			if carried.count == 0 {
				continue outer
			}
			cw1, cw2 = carried.key.Words()
			table = 1 - table
			alt := t.bucketW(table, cw1, cw2)
			ops.Hashes++
			ops.MemAccesses++
			for s := range alt {
				if alt[s].count == 0 {
					alt[s] = carried
					ops.MemAccesses++
					continue outer
				}
			}
		}
		t.evicted++
	}
	t.ops = t.ops.Add(ops)
}

// EstimateSize returns the stored count of a flow, 0 if absent.
func (t *Table) EstimateSize(k flow.Key) uint32 {
	for i := 0; i < numTables; i++ {
		for _, c := range t.bucket(i, k) {
			if c.count > 0 && c.key == k {
				return c.count
			}
		}
	}
	return 0
}

// Records reports every stored flow record.
func (t *Table) Records() []flow.Record {
	return t.AppendRecords(nil)
}

// AppendRecords appends every stored flow record to dst and returns the
// extended slice, allocating only when dst lacks capacity.
func (t *Table) AppendRecords(dst []flow.Record) []flow.Record {
	for i := range t.tables {
		for _, c := range t.tables[i] {
			if c.count > 0 {
				dst = append(dst, flow.Record{Key: c.key, Count: c.count})
			}
		}
	}
	return dst
}

// EstimateCardinality returns the number of stored records; like HashPipe,
// a cuckoo table has no summarized region to estimate dropped flows.
func (t *Table) EstimateCardinality() float64 {
	n := 0
	for i := range t.tables {
		for _, c := range t.tables[i] {
			if c.count > 0 {
				n++
			}
		}
	}
	return float64(n)
}

// Evicted returns the number of records discarded at the kick cap.
func (t *Table) Evicted() uint64 { return t.evicted }

// Cells returns the total number of cells.
func (t *Table) Cells() int { return len(t.tables[0]) + len(t.tables[1]) }

// MemoryBytes returns the table footprint.
func (t *Table) MemoryBytes() int { return t.Cells() * CellBytes }

// OpStats returns cumulative operation counts since the last Reset. The
// long displacement chains appear as a high and variable hashes-per-packet
// figure under load — the paper's §II objection.
func (t *Table) OpStats() flow.OpStats { return t.ops }

// Reset clears the table and counters.
func (t *Table) Reset() {
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = cell{}
		}
	}
	t.ops = flow.OpStats{}
	t.evicted = 0
	t.rng = rand.New(rand.NewPCG(t.cfg.Seed, 0xC0C0))
}
