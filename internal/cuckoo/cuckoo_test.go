package cuckoo

import (
	"math/rand/v2"
	"testing"

	"repro/flow"
)

func mustNew(t *testing.T, cfg Config) *Table {
	t.Helper()
	tbl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randKey(rng *rand.Rand) flow.Key {
	return flow.Key{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), SrcPort: uint16(rng.Uint32()), Proto: 6}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted zero memory")
	}
	if _, err := New(Config{MemoryBytes: 1 << 12, MaxKicks: -1}); err == nil {
		t.Error("accepted negative kicks")
	}
	if _, err := New(Config{MemoryBytes: 10}); err == nil {
		t.Error("accepted budget below one cell")
	}
}

func TestSingleFlowExact(t *testing.T) {
	tbl := mustNew(t, Config{MemoryBytes: 1 << 14, Seed: 1})
	k := flow.Key{SrcIP: 1, DstIP: 2, Proto: 6}
	for i := 0; i < 100; i++ {
		tbl.Update(flow.Packet{Key: k})
	}
	if got := tbl.EstimateSize(k); got != 100 {
		t.Errorf("EstimateSize = %d, want 100", got)
	}
}

func TestSparseFlowsExact(t *testing.T) {
	tbl := mustNew(t, Config{MemoryBytes: 1 << 18, Seed: 2})
	rng := rand.New(rand.NewPCG(1, 2))
	truth := make(map[flow.Key]uint32)
	for i := 0; i < 500; i++ {
		k := randKey(rng)
		n := uint32(rng.IntN(20) + 1)
		truth[k] += n
		for j := uint32(0); j < n; j++ {
			tbl.Update(flow.Packet{Key: k})
		}
	}
	for k, want := range truth {
		if got := tbl.EstimateSize(k); got != want {
			t.Errorf("EstimateSize(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestHighUtilization(t *testing.T) {
	// Cuckoo's selling point: near-full occupancy below capacity.
	tbl := mustNew(t, Config{MemoryBytes: CellBytes * 1024, Seed: 3})
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 900; i++ { // 88% load
		tbl.Update(flow.Packet{Key: randKey(rng)})
	}
	if got := len(tbl.Records()); got < 850 {
		t.Errorf("stored %d of 900 flows at 88%% load", got)
	}
}

func TestEvictionUnderOverload(t *testing.T) {
	// Over capacity, the kick cap forces whole-record drops — the lossy
	// behaviour HashFlow's design avoids.
	tbl := mustNew(t, Config{MemoryBytes: CellBytes * 256, Seed: 4})
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 2000; i++ {
		tbl.Update(flow.Packet{Key: randKey(rng)})
	}
	if tbl.Evicted() == 0 {
		t.Error("no evictions at 8x overload")
	}
	if got := len(tbl.Records()); got > tbl.Cells() {
		t.Errorf("stored %d records in %d cells", got, tbl.Cells())
	}
}

func TestKickChainsCostHashes(t *testing.T) {
	// Under overload the displacement chains drive hashes/packet far above
	// the 2-hash fast path — the unbounded-insertion objection from §II.
	tbl := mustNew(t, Config{MemoryBytes: CellBytes * 128, MaxKicks: 64, Seed: 5})
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 10000; i++ {
		tbl.Update(flow.Packet{Key: randKey(rng)})
	}
	if hpp := tbl.OpStats().HashesPerPacket(); hpp < 3 {
		t.Errorf("hashes/packet = %.2f under overload, expected kick chains to push it above 3", hpp)
	}
}

func TestCountsNeverExceedTruth(t *testing.T) {
	tbl := mustNew(t, Config{MemoryBytes: CellBytes * 64, Seed: 6})
	rng := rand.New(rand.NewPCG(9, 10))
	truth := make(map[flow.Key]uint32)
	keys := make([]flow.Key, 300)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 20000; i++ {
		k := keys[rng.IntN(len(keys))]
		truth[k]++
		tbl.Update(flow.Packet{Key: k})
	}
	for _, r := range tbl.Records() {
		if r.Count > truth[r.Key] {
			t.Fatalf("record %v count %d exceeds truth %d", r.Key, r.Count, truth[r.Key])
		}
	}
}

func TestReset(t *testing.T) {
	tbl := mustNew(t, Config{MemoryBytes: 1 << 12, Seed: 7})
	tbl.Update(flow.Packet{Key: flow.Key{SrcIP: 1}})
	tbl.Reset()
	if len(tbl.Records()) != 0 || tbl.OpStats() != (flow.OpStats{}) || tbl.Evicted() != 0 {
		t.Error("Reset incomplete")
	}
	if got := tbl.EstimateCardinality(); got != 0 {
		t.Errorf("cardinality after reset = %v", got)
	}
}
