package hashpipe

import (
	"math/rand/v2"
	"testing"

	"repro/flow"
)

func mustNew(t *testing.T, cfg Config) *HashPipe {
	t.Helper()
	hp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return hp
}

func randKey(rng *rand.Rand) flow.Key {
	return flow.Key{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), SrcPort: uint16(rng.Uint32()), Proto: 6}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted zero memory")
	}
	if _, err := New(Config{MemoryBytes: 1 << 12, Stages: 100}); err == nil {
		t.Error("accepted 100 stages")
	}
	if _, err := New(Config{MemoryBytes: 10, Stages: 4}); err == nil {
		t.Error("accepted budget below one cell per stage")
	}
}

func TestDefaults(t *testing.T) {
	hp := mustNew(t, Config{MemoryBytes: 68 << 10})
	if got := len(hp.stages); got != DefaultStages {
		t.Errorf("stages = %d, want %d", got, DefaultStages)
	}
	if hp.MemoryBytes() > 68<<10 {
		t.Errorf("MemoryBytes %d exceeds budget", hp.MemoryBytes())
	}
	wantCells := (68 << 10) / 4 / CellBytes * 4
	if got := hp.Cells(); got != wantCells {
		t.Errorf("Cells = %d, want %d", got, wantCells)
	}
}

func TestSingleFlowExact(t *testing.T) {
	hp := mustNew(t, Config{MemoryBytes: 1 << 14, Seed: 1})
	k := flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	for i := 0; i < 100; i++ {
		hp.Update(flow.Packet{Key: k})
	}
	if got := hp.EstimateSize(k); got != 100 {
		t.Errorf("EstimateSize = %d, want 100", got)
	}
}

func TestSparseFlowsExact(t *testing.T) {
	hp := mustNew(t, Config{MemoryBytes: 1 << 18, Seed: 2})
	rng := rand.New(rand.NewPCG(1, 2))
	truth := make(map[flow.Key]uint32)
	for i := 0; i < 300; i++ {
		k := randKey(rng)
		n := uint32(rng.IntN(20) + 1)
		truth[k] += n
		for j := uint32(0); j < n; j++ {
			hp.Update(flow.Packet{Key: k})
		}
	}
	for k, want := range truth {
		if got := hp.EstimateSize(k); got != want {
			t.Errorf("EstimateSize(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestTotalCountConserved(t *testing.T) {
	// HashPipe only discards records evicted from the last stage, so the
	// sum of all stored counts never exceeds the number of packets.
	hp := mustNew(t, Config{MemoryBytes: 17 * 64, Seed: 3})
	rng := rand.New(rand.NewPCG(3, 4))
	const packets = 10000
	for i := 0; i < packets; i++ {
		hp.Update(flow.Packet{Key: randKey(rng)})
	}
	var total uint64
	for _, r := range hp.Records() {
		total += uint64(r.Count)
	}
	if total > packets {
		t.Errorf("stored counts %d exceed %d packets", total, packets)
	}
}

func TestFragmentationHappens(t *testing.T) {
	// The known HashPipe defect: one flow's packets can be split across
	// stages when it is evicted and re-inserted. Verify our implementation
	// reproduces it (Records merges fragments; raw stages may hold the key
	// twice). Under heavy collision pressure at least one flow should
	// fragment.
	hp := mustNew(t, Config{MemoryBytes: 17 * 16, Seed: 4})
	rng := rand.New(rand.NewPCG(5, 6))
	keys := make([]flow.Key, 64)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 20000; i++ {
		hp.Update(flow.Packet{Key: keys[rng.IntN(len(keys))]})
	}
	fragmented := 0
	for _, k := range keys {
		n := 0
		w1, w2 := k.Words()
		for s, stage := range hp.stages {
			idx := hp.family.Bucket(s, w1, w2, uint64(len(stage)))
			if c := stage[idx]; c.count > 0 && c.key == k {
				n++
			}
		}
		if n > 1 {
			fragmented++
		}
	}
	if fragmented == 0 {
		t.Log("no fragmentation observed at this seed (not an error, but unexpected)")
	}
}

func TestRecordsMergeFragments(t *testing.T) {
	hp := mustNew(t, Config{MemoryBytes: 17 * 16, Seed: 4})
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 5000; i++ {
		hp.Update(flow.Packet{Key: randKey(rng)})
	}
	seen := make(map[flow.Key]struct{})
	for _, r := range hp.Records() {
		if _, dup := seen[r.Key]; dup {
			t.Fatalf("Records reported key %v twice", r.Key)
		}
		seen[r.Key] = struct{}{}
	}
}

func TestOpStats(t *testing.T) {
	hp := mustNew(t, Config{MemoryBytes: 1 << 12, Seed: 7})
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 5000; i++ {
		hp.Update(flow.Packet{Key: randKey(rng)})
	}
	s := hp.OpStats()
	if s.Packets != 5000 {
		t.Fatalf("Packets = %d", s.Packets)
	}
	if hpp := s.HashesPerPacket(); hpp < 1 || hpp > 4 {
		t.Errorf("HashesPerPacket = %.2f, want in [1,4]", hpp)
	}
}

func TestCardinalityUndercounts(t *testing.T) {
	// HashPipe has no cardinality estimator; with many more flows than
	// cells it must undercount (the paper's Fig. 7 behaviour).
	hp := mustNew(t, Config{MemoryBytes: 17 * 256, Seed: 8})
	rng := rand.New(rand.NewPCG(9, 10))
	const flows = 10000
	for i := 0; i < flows; i++ {
		hp.Update(flow.Packet{Key: randKey(rng)})
	}
	if est := hp.EstimateCardinality(); est > flows/10 {
		t.Errorf("cardinality estimate %.0f, expected heavy undercount of %d", est, flows)
	}
}

func TestReset(t *testing.T) {
	hp := mustNew(t, Config{MemoryBytes: 1 << 12, Seed: 9})
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 100; i++ {
		hp.Update(flow.Packet{Key: randKey(rng)})
	}
	hp.Reset()
	if len(hp.Records()) != 0 || hp.OpStats() != (flow.OpStats{}) {
		t.Error("Reset incomplete")
	}
}

func TestEstimateUnknownFlow(t *testing.T) {
	hp := mustNew(t, Config{MemoryBytes: 1 << 12, Seed: 10})
	if got := hp.EstimateSize(flow.Key{SrcIP: 7}); got != 0 {
		t.Errorf("EstimateSize of unseen flow = %d, want 0", got)
	}
}
