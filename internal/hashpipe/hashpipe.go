// Package hashpipe implements HashPipe (Sivaraman et al., SOSR 2017), the
// d-stage pipelined heavy-hitter table the paper compares against.
//
// Stage 1 always inserts the incoming flow, evicting any incumbent; later
// stages keep the larger of the carried record and the incumbent. This
// "always insert, min eviction" policy lets new flows enter but can split
// one flow's packets across several stage records — the inefficiency
// HashFlow's non-evicting main table avoids.
package hashpipe

import (
	"fmt"

	"repro/flow"
	"repro/internal/hashing"
)

// DefaultStages is the evaluation setting from the paper: 4 equal sub-tables.
const DefaultStages = 4

// CellBytes is the size of one stage record: 104-bit flow ID plus 32-bit count.
const CellBytes = flow.KeyBytes + 4

// Config parameterizes a HashPipe instance.
type Config struct {
	// MemoryBytes is the total memory budget split equally across stages.
	MemoryBytes int
	// Stages is the number of pipeline stages (default 4).
	Stages int
	// Seed makes the hash family deterministic.
	Seed uint64
}

type cell struct {
	key   flow.Key
	count uint32
}

// HashPipe is a d-stage pipeline of hash tables.
type HashPipe struct {
	stages [][]cell
	family *hashing.Family
	ops    flow.OpStats
}

// New builds a HashPipe with cfg, applying defaults for unset fields.
func New(cfg Config) (*HashPipe, error) {
	if cfg.Stages == 0 {
		cfg.Stages = DefaultStages
	}
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("hashpipe: memory budget must be positive, got %d", cfg.MemoryBytes)
	}
	if cfg.Stages < 1 || cfg.Stages > 16 {
		return nil, fmt.Errorf("hashpipe: stages must be in [1,16], got %d", cfg.Stages)
	}
	per := cfg.MemoryBytes / cfg.Stages / CellBytes
	if per < 1 {
		return nil, fmt.Errorf("hashpipe: budget of %d bytes leaves no cells for %d stages",
			cfg.MemoryBytes, cfg.Stages)
	}
	hp := &HashPipe{
		stages: make([][]cell, cfg.Stages),
		family: hashing.NewFamily(cfg.Stages, cfg.Seed),
	}
	for i := range hp.stages {
		hp.stages[i] = make([]cell, per)
	}
	return hp, nil
}

// Update processes one packet through the pipeline.
func (hp *HashPipe) Update(p flow.Packet) {
	hp.ops.Packets++
	w1, w2 := p.Key.Words()

	// Stage 1: always insert; evict the incumbent if it is a different flow.
	idx := hp.family.Bucket(0, w1, w2, uint64(len(hp.stages[0])))
	hp.ops.Hashes++
	hp.ops.MemAccesses++
	c := &hp.stages[0][idx]
	switch {
	case c.count == 0:
		*c = cell{key: p.Key, count: 1}
		hp.ops.MemAccesses++
		return
	case c.key == p.Key:
		c.count++
		hp.ops.MemAccesses++
		return
	}
	carried := *c
	*c = cell{key: p.Key, count: 1}
	hp.ops.MemAccesses++

	// Later stages: merge on match, fill empty, otherwise keep the larger
	// record and carry the smaller one onward.
	for s := 1; s < len(hp.stages); s++ {
		cw1, cw2 := carried.key.Words()
		idx := hp.family.Bucket(s, cw1, cw2, uint64(len(hp.stages[s])))
		hp.ops.Hashes++
		hp.ops.MemAccesses++
		c := &hp.stages[s][idx]
		switch {
		case c.count == 0:
			*c = carried
			hp.ops.MemAccesses++
			return
		case c.key == carried.key:
			c.count += carried.count
			hp.ops.MemAccesses++
			return
		case carried.count > c.count:
			carried, *c = *c, carried
			hp.ops.MemAccesses++
		}
	}
	// The record evicted from the last stage is discarded.
}

// UpdateBatch processes pkts in order with the same semantics as repeated
// Update calls, hoisting stage-slice loads out of the packet loop and
// accumulating operation counters locally so the shared stats struct is
// written once per batch.
func (hp *HashPipe) UpdateBatch(pkts []flow.Packet) {
	var ops flow.OpStats
	stage0 := hp.stages[0]
	n0 := uint64(len(stage0))

outer:
	for pi := range pkts {
		p := &pkts[pi]
		ops.Packets++
		w1, w2 := p.Key.Words()

		idx := hp.family.Bucket(0, w1, w2, n0)
		ops.Hashes++
		ops.MemAccesses++
		c := &stage0[idx]
		switch {
		case c.count == 0:
			*c = cell{key: p.Key, count: 1}
			ops.MemAccesses++
			continue
		case c.key == p.Key:
			c.count++
			ops.MemAccesses++
			continue
		}
		carried := *c
		*c = cell{key: p.Key, count: 1}
		ops.MemAccesses++

		for s := 1; s < len(hp.stages); s++ {
			cw1, cw2 := carried.key.Words()
			idx := hp.family.Bucket(s, cw1, cw2, uint64(len(hp.stages[s])))
			ops.Hashes++
			ops.MemAccesses++
			c := &hp.stages[s][idx]
			switch {
			case c.count == 0:
				*c = carried
				ops.MemAccesses++
				continue outer
			case c.key == carried.key:
				c.count += carried.count
				ops.MemAccesses++
				continue outer
			case carried.count > c.count:
				carried, *c = *c, carried
				ops.MemAccesses++
			}
		}
	}
	hp.ops = hp.ops.Add(ops)
}

// EstimateSize sums the counts of every stage record matching the key —
// a single flow may be fragmented across stages.
func (hp *HashPipe) EstimateSize(k flow.Key) uint32 {
	w1, w2 := k.Words()
	var total uint32
	for s, stage := range hp.stages {
		idx := hp.family.Bucket(s, w1, w2, uint64(len(stage)))
		if c := stage[idx]; c.count > 0 && c.key == k {
			total += c.count
		}
	}
	return total
}

// Records reports one merged record per distinct key held in any stage.
func (hp *HashPipe) Records() []flow.Record {
	return hp.AppendRecords(nil)
}

// AppendRecords appends one merged record per distinct key held in any
// stage to dst and returns the extended slice. Merging duplicates across
// stages still builds a scratch map (a key may sit in several stages), but
// the reported records land in dst without further copies.
func (hp *HashPipe) AppendRecords(dst []flow.Record) []flow.Record {
	merged := make(map[flow.Key]uint32)
	for _, stage := range hp.stages {
		for _, c := range stage {
			if c.count > 0 {
				merged[c.key] += c.count
			}
		}
	}
	for k, v := range merged {
		dst = append(dst, flow.Record{Key: k, Count: v})
	}
	return dst
}

// EstimateCardinality returns the number of distinct keys currently held.
// HashPipe has no auxiliary cardinality estimator, so it badly undercounts
// once flows are evicted — exactly the behaviour Fig. 7 of the paper shows.
func (hp *HashPipe) EstimateCardinality() float64 {
	distinct := make(map[flow.Key]struct{})
	for _, stage := range hp.stages {
		for _, c := range stage {
			if c.count > 0 {
				distinct[c.key] = struct{}{}
			}
		}
	}
	return float64(len(distinct))
}

// MemoryBytes returns the memory footprint of all stages.
func (hp *HashPipe) MemoryBytes() int {
	n := 0
	for _, s := range hp.stages {
		n += len(s) * CellBytes
	}
	return n
}

// Cells returns the total number of cells across stages.
func (hp *HashPipe) Cells() int {
	n := 0
	for _, s := range hp.stages {
		n += len(s)
	}
	return n
}

// OpStats returns cumulative operation counts since the last Reset.
func (hp *HashPipe) OpStats() flow.OpStats { return hp.ops }

// Reset clears all stages and counters.
func (hp *HashPipe) Reset() {
	for _, s := range hp.stages {
		for i := range s {
			s[i] = cell{}
		}
	}
	hp.ops = flow.OpStats{}
}
