// Package spacesaving implements the Space-Saving algorithm (Metwally et
// al., ICDT 2005), the classic counter-based heavy-hitter structure that
// HashPipe's own evaluation compares against. It keeps a fixed set of
// (key, count, error) entries; a packet from an untracked flow replaces the
// minimum entry, inheriting its count as overestimation error.
//
// This implementation uses a min-heap over counts with a key index,
// giving O(log n) updates — faithful to the algorithm's standard software
// form (the reason it is hard to implement in a switch pipeline, which is
// HashPipe's motivation).
package spacesaving

import (
	"container/heap"
	"fmt"

	"repro/flow"
)

// EntryBytes approximates one entry: key (13 B) + count (4 B) + error
// (4 B) + heap index (4 B).
const EntryBytes = flow.KeyBytes + 12

// Config parameterizes a Space-Saving summary.
type Config struct {
	// MemoryBytes bounds the number of tracked entries (MemoryBytes/25).
	MemoryBytes int
	// Seed is accepted for interface symmetry; the algorithm is
	// deterministic and ignores it.
	Seed uint64
}

type entry struct {
	key   flow.Key
	count uint32
	err   uint32 // overestimation inherited at replacement
	idx   int    // position in the heap
}

// Summary is a Space-Saving stream summary.
type Summary struct {
	capacity int
	entries  map[flow.Key]*entry
	h        entryHeap
	ops      flow.OpStats
}

// New builds a Space-Saving summary.
func New(cfg Config) (*Summary, error) {
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("spacesaving: memory budget must be positive, got %d", cfg.MemoryBytes)
	}
	capacity := cfg.MemoryBytes / EntryBytes
	if capacity < 1 {
		return nil, fmt.Errorf("spacesaving: budget of %d bytes holds no entries", cfg.MemoryBytes)
	}
	return &Summary{
		capacity: capacity,
		entries:  make(map[flow.Key]*entry, capacity),
	}, nil
}

// Capacity returns the maximum number of tracked flows.
func (s *Summary) Capacity() int { return s.capacity }

// Update processes one packet.
func (s *Summary) Update(p flow.Packet) {
	s.ops.Packets++
	s.ops.MemAccesses++
	if e, ok := s.entries[p.Key]; ok {
		e.count++
		heap.Fix(&s.h, e.idx)
		s.ops.MemAccesses++
		return
	}
	if len(s.entries) < s.capacity {
		e := &entry{key: p.Key, count: 1}
		s.entries[p.Key] = e
		heap.Push(&s.h, e)
		s.ops.MemAccesses++
		return
	}
	// Replace the minimum entry; the newcomer inherits its count as error.
	min := s.h[0]
	delete(s.entries, min.key)
	newEntry := &entry{key: p.Key, count: min.count + 1, err: min.count, idx: 0}
	s.entries[p.Key] = newEntry
	s.h[0] = newEntry
	heap.Fix(&s.h, 0)
	s.ops.MemAccesses += 2
}

// UpdateBatch processes pkts in order with the same semantics as repeated
// Update calls. Space-Saving is map- and heap-bound, so the only batchable
// overhead is the statistics bookkeeping, flushed once per batch.
func (s *Summary) UpdateBatch(pkts []flow.Packet) {
	var ops flow.OpStats
	for pi := range pkts {
		k := pkts[pi].Key
		ops.Packets++
		ops.MemAccesses++
		if e, ok := s.entries[k]; ok {
			e.count++
			heap.Fix(&s.h, e.idx)
			ops.MemAccesses++
			continue
		}
		if len(s.entries) < s.capacity {
			e := &entry{key: k, count: 1}
			s.entries[k] = e
			heap.Push(&s.h, e)
			ops.MemAccesses++
			continue
		}
		min := s.h[0]
		delete(s.entries, min.key)
		newEntry := &entry{key: k, count: min.count + 1, err: min.count, idx: 0}
		s.entries[k] = newEntry
		s.h[0] = newEntry
		heap.Fix(&s.h, 0)
		ops.MemAccesses += 2
	}
	s.ops = s.ops.Add(ops)
}

// EstimateSize returns the (over)estimated count of a tracked flow, 0 if
// untracked. Space-Saving guarantees estimate >= true count for tracked
// flows.
func (s *Summary) EstimateSize(k flow.Key) uint32 {
	if e, ok := s.entries[k]; ok {
		return e.count
	}
	return 0
}

// GuaranteedCount returns the lower bound count − error for a tracked flow.
func (s *Summary) GuaranteedCount(k flow.Key) uint32 {
	if e, ok := s.entries[k]; ok {
		return e.count - e.err
	}
	return 0
}

// Records reports every tracked flow with its estimated count.
func (s *Summary) Records() []flow.Record {
	return s.AppendRecords(make([]flow.Record, 0, len(s.entries)))
}

// AppendRecords appends every tracked flow with its estimated count to dst
// and returns the extended slice, allocating only when dst lacks capacity.
func (s *Summary) AppendRecords(dst []flow.Record) []flow.Record {
	for k, e := range s.entries {
		dst = append(dst, flow.Record{Key: k, Count: e.count})
	}
	return dst
}

// EstimateCardinality returns the number of tracked flows — like HashPipe,
// a bare counter summary cannot see beyond its capacity.
func (s *Summary) EstimateCardinality() float64 {
	return float64(len(s.entries))
}

// MemoryBytes returns the configured footprint.
func (s *Summary) MemoryBytes() int { return s.capacity * EntryBytes }

// OpStats returns cumulative operation counts. Space-Saving hashes nothing
// (map-based), but its heap maintenance shows up as memory accesses.
func (s *Summary) OpStats() flow.OpStats { return s.ops }

// Reset clears the summary.
func (s *Summary) Reset() {
	s.entries = make(map[flow.Key]*entry, s.capacity)
	s.h = nil
	s.ops = flow.OpStats{}
}

// entryHeap is a min-heap over entry counts.
type entryHeap []*entry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].count < h[j].count }
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *entryHeap) Push(x any) {
	e, ok := x.(*entry)
	if !ok {
		return
	}
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
