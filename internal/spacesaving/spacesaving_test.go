package spacesaving

import (
	"math/rand/v2"
	"testing"

	"repro/flow"
)

func mustNew(t *testing.T, cfg Config) *Summary {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randKey(rng *rand.Rand) flow.Key {
	return flow.Key{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), Proto: 6}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted zero memory")
	}
	if _, err := New(Config{MemoryBytes: 3}); err == nil {
		t.Error("accepted budget below one entry")
	}
}

func TestExactUnderCapacity(t *testing.T) {
	s := mustNew(t, Config{MemoryBytes: EntryBytes * 100})
	rng := rand.New(rand.NewPCG(1, 2))
	truth := make(map[flow.Key]uint32)
	keys := make([]flow.Key, 50)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 5000; i++ {
		k := keys[rng.IntN(len(keys))]
		truth[k]++
		s.Update(flow.Packet{Key: k})
	}
	for k, want := range truth {
		if got := s.EstimateSize(k); got != want {
			t.Errorf("EstimateSize(%v) = %d, want %d", k, got, want)
		}
		if got := s.GuaranteedCount(k); got != want {
			t.Errorf("GuaranteedCount(%v) = %d, want %d", k, got, want)
		}
	}
}

func TestNeverUnderestimatesTracked(t *testing.T) {
	// The Space-Saving guarantee: for tracked flows, estimate >= truth, and
	// count − error <= truth.
	s := mustNew(t, Config{MemoryBytes: EntryBytes * 64})
	rng := rand.New(rand.NewPCG(3, 4))
	truth := make(map[flow.Key]uint32)
	keys := make([]flow.Key, 1000) // far over capacity
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 50000; i++ {
		k := keys[rng.IntN(len(keys))]
		truth[k]++
		s.Update(flow.Packet{Key: k})
	}
	for _, r := range s.Records() {
		real := truth[r.Key]
		if r.Count < real {
			t.Fatalf("tracked flow %v estimated %d < true %d", r.Key, r.Count, real)
		}
		if g := s.GuaranteedCount(r.Key); g > real {
			t.Fatalf("guaranteed count %d exceeds true %d", g, real)
		}
	}
}

func TestCapacityBound(t *testing.T) {
	s := mustNew(t, Config{MemoryBytes: EntryBytes * 32})
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 10000; i++ {
		s.Update(flow.Packet{Key: randKey(rng)})
	}
	if got := len(s.Records()); got != 32 {
		t.Errorf("tracked %d flows, capacity 32", got)
	}
	if got := s.EstimateCardinality(); got != 32 {
		t.Errorf("cardinality %v", got)
	}
}

func TestElephantSurvivesMouseFlood(t *testing.T) {
	// Space-Saving guarantees any flow with more than N/capacity packets is
	// tracked. Give the elephant well above that share (20K of a 70K-packet
	// stream, capacity 16 → bound 4375) and flood with one-packet mice.
	s := mustNew(t, Config{MemoryBytes: EntryBytes * 16})
	elephant := flow.Key{SrcIP: 1, Proto: 6}
	for i := 0; i < 20000; i++ {
		s.Update(flow.Packet{Key: elephant})
	}
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 50000; i++ {
		s.Update(flow.Packet{Key: randKey(rng)})
	}
	if got := s.EstimateSize(elephant); got < 20000 {
		t.Errorf("elephant estimate %d after mouse flood, want >= 20000", got)
	}
}

func TestTotalCountConservation(t *testing.T) {
	// Invariant: the heap total equals the number of processed packets,
	// because replacement transfers counts instead of dropping them.
	s := mustNew(t, Config{MemoryBytes: EntryBytes * 16})
	rng := rand.New(rand.NewPCG(9, 10))
	const packets = 20000
	for i := 0; i < packets; i++ {
		s.Update(flow.Packet{Key: randKey(rng)})
	}
	var total uint64
	for _, r := range s.Records() {
		total += uint64(r.Count)
	}
	if total != packets {
		t.Errorf("tracked counts sum to %d, want exactly %d", total, packets)
	}
}

func TestReset(t *testing.T) {
	s := mustNew(t, Config{MemoryBytes: EntryBytes * 8})
	s.Update(flow.Packet{Key: flow.Key{SrcIP: 1}})
	s.Reset()
	if len(s.Records()) != 0 || s.OpStats() != (flow.OpStats{}) {
		t.Error("Reset incomplete")
	}
	if got := s.EstimateSize(flow.Key{SrcIP: 1}); got != 0 {
		t.Errorf("estimate after reset = %d", got)
	}
}
