package collector

import (
	"testing"

	"repro/flow"
	"repro/flowmon"
	"repro/shard"
	"repro/trace"
)

// captureRecorder records the batch boundaries it is fed.
type captureRecorder struct {
	batches []int
	packets []flow.Packet
}

func (c *captureRecorder) UpdateBatch(pkts []flow.Packet) {
	c.batches = append(c.batches, len(pkts))
	c.packets = append(c.packets, pkts...)
}

func ingestTrace(t *testing.T, flows int, seed uint64) []flow.Packet {
	t.Helper()
	tr, err := trace.Generate(trace.ISP1, flows, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Packets(seed)
}

func TestIngestorValidation(t *testing.T) {
	if _, err := NewIngestor(nil, 8); err == nil {
		t.Error("accepted nil recorder")
	}
	g, err := NewIngestor(&captureRecorder{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cap(g.buf) != DefaultBatchSize {
		t.Errorf("default batch size = %d, want %d", cap(g.buf), DefaultBatchSize)
	}
}

func TestIngestorBatchBoundaries(t *testing.T) {
	rec := &captureRecorder{}
	g, err := NewIngestor(rec, 4)
	if err != nil {
		t.Fatal(err)
	}
	pkts := ingestTrace(t, 100, 3)[:10]
	for _, p := range pkts {
		g.Add(p)
	}
	g.Flush()
	g.Flush() // empty flush is a no-op

	wantBatches := []int{4, 4, 2}
	if len(rec.batches) != len(wantBatches) {
		t.Fatalf("batches = %v, want %v", rec.batches, wantBatches)
	}
	for i, n := range wantBatches {
		if rec.batches[i] != n {
			t.Fatalf("batches = %v, want %v", rec.batches, wantBatches)
		}
	}
	if g.Packets() != 10 || g.Batches() != 3 {
		t.Errorf("stats = %d packets / %d batches, want 10/3", g.Packets(), g.Batches())
	}
	for i := range pkts {
		if rec.packets[i] != pkts[i] {
			t.Fatalf("packet %d reordered", i)
		}
	}
}

func TestIngestorAddBatchCrossesBoundaries(t *testing.T) {
	rec := &captureRecorder{}
	g, err := NewIngestor(rec, 16)
	if err != nil {
		t.Fatal(err)
	}
	pkts := ingestTrace(t, 500, 5)
	g.AddBatch(pkts[:7])    // partial
	g.AddBatch(pkts[7:100]) // crosses several boundaries
	g.AddBatch(pkts[100:])
	g.Flush()

	if g.Packets() != uint64(len(pkts)) {
		t.Fatalf("delivered %d packets, want %d", g.Packets(), len(pkts))
	}
	for i := range pkts {
		if rec.packets[i] != pkts[i] {
			t.Fatalf("packet %d reordered", i)
		}
	}
}

// TestReplayEquivalence drives the full pipeline — Ingestor batching into
// a sharded recorder — and checks the result is identical to per-packet
// updates on an unsharded recorder fleet with the same layout.
func TestReplayEquivalence(t *testing.T) {
	pkts := ingestTrace(t, 4000, 9)
	cfg := flowmon.Config{MemoryBytes: 256 << 10, Seed: 1}

	batched, err := shard.NewUniform(4, flowmon.AlgorithmHashFlow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := shard.NewUniform(4, flowmon.AlgorithmHashFlow, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if err := Replay(batched, pkts, 128); err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		sequential.Update(p)
	}

	if b, s := batched.OpStats(), sequential.OpStats(); b != s {
		t.Errorf("OpStats diverge: batched %+v, sequential %+v", b, s)
	}
	if b, s := batched.EstimateCardinality(), sequential.EstimateCardinality(); b != s {
		t.Errorf("cardinality diverges: batched %v, sequential %v", b, s)
	}
	if b, s := len(batched.Records()), len(sequential.Records()); b != s {
		t.Errorf("record counts diverge: batched %d, sequential %d", b, s)
	}
}
