//go:build darwin || dragonfly || freebsd || netbsd || openbsd

package collector

import "syscall"

const soReusePort = syscall.SO_REUSEPORT
