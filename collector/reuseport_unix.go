//go:build linux || darwin || dragonfly || freebsd || netbsd || openbsd

package collector

import (
	"context"
	"fmt"
	"net"
	"syscall"
)

// reusePortSupported reports whether this platform can bind several UDP
// sockets to one address with SO_REUSEPORT, letting the kernel fan
// datagrams out across them (hashed by 4-tuple, so one exporter's stream
// stays on one socket — which is what keeps per-source sequence
// accounting reader-local).
const reusePortSupported = true

// listenReusePort binds one UDP socket to addr with SO_REUSEPORT set
// before bind, via the ListenConfig control hook.
func listenReusePort(network, addr string) (*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			if serr != nil {
				return fmt.Errorf("collector: set SO_REUSEPORT: %w", serr)
			}
			return nil
		},
	}
	pc, err := lc.ListenPacket(context.Background(), network, addr)
	if err != nil {
		return nil, err
	}
	conn, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return nil, fmt.Errorf("collector: %s listener is %T, not UDP", network, pc)
	}
	return conn, nil
}
