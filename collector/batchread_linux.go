//go:build linux && (amd64 || arm64)

package collector

import (
	"net"
	"net/netip"
	"runtime"
	"syscall"
	"unsafe"

	"repro/netflow"
)

// batchReadMode names the batch-read implementation in use, for
// diagnostics and the bench report.
const batchReadMode = "recvmmsg"

// mmsghdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// kernel-written datagram length, padded to 8 bytes. The layout is gated
// to linux/{amd64,arm64} by the build tag — 32-bit ABIs pack it
// differently and take the portable single-read path instead.
type mmsghdr struct {
	hdr  syscall.Msghdr
	dlen uint32
	_    [4]byte
}

// batchConn drains up to batch datagrams per wakeup with recvmmsg into
// preallocated buffers: one syscall amortized over the whole burst, with
// the source address of each datagram captured for per-exporter sequence
// accounting. All state is reused across calls — the read path allocates
// nothing per datagram.
type batchConn struct {
	rc    syscall.RawConn
	bufs  [][]byte
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrAny
	hs    []mmsghdr
	ns    []int
	srcs  []netip.AddrPort
}

func newBatchConn(conn *net.UDPConn, batch int) (*batchConn, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	bc := &batchConn{
		rc:    rc,
		bufs:  make([][]byte, batch),
		iovs:  make([]syscall.Iovec, batch),
		names: make([]syscall.RawSockaddrAny, batch),
		hs:    make([]mmsghdr, batch),
		ns:    make([]int, batch),
		srcs:  make([]netip.AddrPort, batch),
	}
	for i := range bc.bufs {
		bc.bufs[i] = make([]byte, netflow.MaxDatagramLen)
		bc.iovs[i].Base = &bc.bufs[i][0]
		bc.iovs[i].Len = uint64(len(bc.bufs[i]))
		bc.hs[i].hdr.Iov = &bc.iovs[i]
		bc.hs[i].hdr.Iovlen = 1
		bc.hs[i].hdr.Name = (*byte)(unsafe.Pointer(&bc.names[i]))
	}
	return bc, nil
}

// read blocks until at least one datagram is available (parking on the
// runtime netpoller via RawConn.Read), then drains up to the batch size
// in one recvmmsg call. It returns how many slots were filled; n == 0
// with a nil error means a benign interruption — call again.
func (bc *batchConn) read() (int, error) {
	// The kernel overwrites msg_namelen per message; restore before reuse.
	for i := range bc.hs {
		bc.hs[i].hdr.Namelen = uint32(unsafe.Sizeof(bc.names[i]))
	}
	var n int
	var operr error
	err := bc.rc.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG,
			fd, uintptr(unsafe.Pointer(&bc.hs[0])), uintptr(len(bc.hs)),
			syscall.MSG_DONTWAIT, 0, 0)
		switch errno {
		case 0:
			n = int(r1)
		case syscall.EAGAIN:
			return false // nothing queued: park until the fd is readable
		case syscall.EINTR:
			n = 0 // interrupted before any datagram: let the caller retry
		default:
			operr = errno
		}
		return true
	})
	runtime.KeepAlive(bc)
	if err != nil {
		return 0, err
	}
	if operr != nil {
		return 0, operr
	}
	for i := 0; i < n; i++ {
		bc.ns[i] = int(bc.hs[i].dlen)
		bc.srcs[i] = rawSockaddrToAddrPort(&bc.names[i])
	}
	return n, nil
}

// rawSockaddrToAddrPort decodes the kernel-filled source address. The
// port sits in network byte order regardless of host endianness.
func rawSockaddrToAddrPort(sa *syscall.RawSockaddrAny) netip.AddrPort {
	switch sa.Addr.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		sa6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa6.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa6.Addr), uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}
