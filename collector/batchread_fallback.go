//go:build !(linux && (amd64 || arm64))

package collector

import (
	"net"
	"net/netip"

	"repro/netflow"
)

const batchReadMode = "single"

// batchConn on platforms without a recvmmsg fast path reads one datagram
// per call through the portable net API (still into a reused buffer, with
// the source captured for per-exporter sequence accounting). The frontend
// loop is identical either way; only the per-wakeup batch size differs.
type batchConn struct {
	conn *net.UDPConn
	bufs [][]byte
	ns   []int
	srcs []netip.AddrPort
}

func newBatchConn(conn *net.UDPConn, batch int) (*batchConn, error) {
	return &batchConn{
		conn: conn,
		bufs: [][]byte{make([]byte, netflow.MaxDatagramLen)},
		ns:   make([]int, 1),
		srcs: make([]netip.AddrPort, 1),
	}, nil
}

func (bc *batchConn) read() (int, error) {
	n, _, _, addr, err := bc.conn.ReadMsgUDPAddrPort(bc.bufs[0], nil)
	if err != nil {
		return 0, err
	}
	bc.ns[0] = n
	bc.srcs[0] = addr
	return 1, nil
}
