//go:build !(linux || darwin || dragonfly || freebsd || netbsd || openbsd)

package collector

import (
	"errors"
	"net"
)

const reusePortSupported = false

func listenReusePort(network, addr string) (*net.UDPConn, error) {
	return nil, errors.New("collector: SO_REUSEPORT unsupported on this platform")
}
