// The line-rate collection frontend: N sockets bound to one address with
// SO_REUSEPORT (the kernel fans datagrams out across them, hashed by
// 4-tuple), each owned by a reader goroutine doing batched reads
// (recvmmsg on 64-bit Linux, a single-read loop elsewhere) that decode
// straight into a per-reader record buffer — no per-packet allocation and
// no shared lock on the datagram path. Epoch rotation is a shared,
// gap-driven boundary: one coordinator goroutine watches the newest
// packet timestamp and, after a quiet gap, drains every reader's
// netflow.Collector into one merged epoch for the sink.
//
// Sequence-gap (loss) accounting is per exporter stream via
// netflow.Collector.IngestFrom, keyed by source address + engine. The
// 4-tuple hash keeps each exporter's datagrams on one socket, so the
// per-source cursors stay reader-local and need no cross-reader
// synchronization. Without SO_REUSEPORT (unsupported platform, or
// Config.ReusePort off) datagrams from one exporter would round-robin
// across readers sharing a socket and shred exactly that accounting, so
// the frontend falls back to a single reader on a single socket.
package collector

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/flow"
	"repro/netflow"
)

// DefaultReadBatch is the per-wakeup datagram batch size of a reader
// (the recvmmsg vector length on Linux).
const DefaultReadBatch = 32

// reader owns one socket's receive state: the batch-read buffers and the
// collector accumulating this reader's slice of the epoch. The mutex only
// interleaves batch ingest with the coordinator's epoch drain — readers
// never contend with each other.
type reader struct {
	bc  *batchConn
	col *netflow.Collector
	mu  sync.Mutex

	datagrams atomic.Uint64
	records   atomic.Uint64
	badData   atomic.Uint64
	batches   atomic.Uint64
	readErrs  atomic.Uint64
}

// ReaderStats is one reader's slice of the datagram-path counters.
type ReaderStats struct {
	Datagrams uint64
	Records   uint64
	BadData   uint64
	Batches   uint64 // read wakeups; Datagrams/Batches is the realized batch size
	ReadErrs  uint64
}

// payload returns slot i of the last batch read.
func (bc *batchConn) payload(i int) []byte { return bc.bufs[i][:bc.ns[i]] }

// src returns the source address of slot i of the last batch read.
func (bc *batchConn) src(i int) netip.AddrPort { return bc.srcs[i] }

// openSockets binds the frontend's sockets. With ReusePort requested,
// supported, and more than one reader, every reader gets its own socket;
// otherwise one socket and (for accounting correctness, see the package
// comment) one reader. It returns the sockets and the effective reader
// count.
func openSockets(cfg Config) ([]*net.UDPConn, int, error) {
	if cfg.Readers > 1 && cfg.ReusePort && reusePortSupported {
		conns := make([]*net.UDPConn, 0, cfg.Readers)
		listen := cfg.Listen
		for i := 0; i < cfg.Readers; i++ {
			c, err := listenReusePort("udp", listen)
			if err != nil {
				for _, open := range conns {
					open.Close()
				}
				if i == 0 {
					// The kernel refused SO_REUSEPORT itself: fall back
					// to the single-socket path below.
					break
				}
				return nil, 0, fmt.Errorf("collector: listen socket %d: %w", i, err)
			}
			if err := c.SetReadBuffer(cfg.ReadBuffer); err != nil {
				c.Close()
				for _, open := range conns {
					open.Close()
				}
				return nil, 0, fmt.Errorf("collector: set read buffer: %w", err)
			}
			if i == 0 {
				// A ":0" listen resolves on the first bind; the rest must
				// share the concrete port.
				listen = c.LocalAddr().String()
			}
			conns = append(conns, c)
		}
		if len(conns) == cfg.Readers {
			return conns, cfg.Readers, nil
		}
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, 0, fmt.Errorf("collector: resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, 0, fmt.Errorf("collector: listen: %w", err)
	}
	if err := conn.SetReadBuffer(cfg.ReadBuffer); err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("collector: set read buffer: %w", err)
	}
	return []*net.UDPConn{conn}, 1, nil
}

// readLoop is one reader's receive loop: block until datagrams arrive,
// ingest the batch, repeat until the socket is closed by Shutdown.
func (s *Server) readLoop(r *reader) {
	defer s.readerWG.Done()
	for {
		n, err := r.bc.read()
		if n > 0 {
			s.ingestBatch(r, n)
		}
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
			}
			if isClosedErr(err) {
				return
			}
			// Transient receive error (e.g. a spurious ICMP-driven
			// errno): count it and keep reading.
			r.readErrs.Add(1)
		}
	}
}

// ingestBatch decodes one batch into the reader's collector and updates
// the shared epoch state. The per-reader lock is taken once per batch,
// not per datagram, and everything else on this path is an atomic.
func (s *Server) ingestBatch(r *reader, n int) {
	now := time.Now()
	s.lastPkt.Store(now.UnixNano())
	if !s.epochOpen.Load() {
		// Racing readers may both store a start time; the values are
		// indistinguishable at epoch granularity.
		s.epochStart.Store(now.UTC().UnixNano())
		s.epochOpen.Store(true)
	}
	var bad int
	r.mu.Lock()
	before := r.col.Count()
	for i := 0; i < n; i++ {
		if err := r.col.IngestFrom(r.bc.src(i), r.bc.payload(i)); err != nil {
			bad++
		}
	}
	added := r.col.Count() - before
	r.mu.Unlock()
	r.datagrams.Add(uint64(n))
	r.records.Add(uint64(added))
	if bad > 0 {
		r.badData.Add(uint64(bad))
	}
	r.batches.Add(1)
}

// run is the rotation coordinator: it polls the shared last-packet clock
// and closes the epoch once the quiet gap elapses, merging every reader's
// records into one reused buffer for the sink. On shutdown it drains the
// final open epoch after the readers exit.
func (s *Server) run() {
	defer close(s.done)
	tick := s.cfg.EpochGap / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var recBuf []flow.Record
	for {
		select {
		case <-s.stop:
			// Readers must be out of their collectors (and done for
			// good) before the final drain.
			s.readerWG.Wait()
			recBuf = s.flushEpoch(recBuf)
			return
		case <-t.C:
			if !s.epochOpen.Load() {
				continue
			}
			if time.Since(time.Unix(0, s.lastPkt.Load())) < s.cfg.EpochGap {
				continue
			}
			recBuf = s.flushEpoch(recBuf)
		}
	}
}

// flushEpoch merges per-reader collector state into one epoch — records
// appended reader by reader into the reused buffer, per-epoch loss
// summed — resets each collector (which preserves sequence cursors, so
// cross-epoch drops still count), and hands the epoch to the sink.
func (s *Server) flushEpoch(recBuf []flow.Record) []flow.Record {
	if !s.epochOpen.Swap(false) {
		return recBuf
	}
	flushStart := time.Now()
	start := time.Unix(0, s.epochStart.Load()).UTC()
	recBuf = recBuf[:0]
	var lost uint64
	for _, r := range s.readers {
		r.mu.Lock()
		recBuf = r.col.AppendFlowRecords(recBuf)
		lost += r.col.Lost()
		r.col.Reset()
		r.mu.Unlock()
	}
	s.lost.Add(lost)
	s.epochs.Add(1)
	s.sink(start, recBuf)
	s.cfg.Metrics.observeFlush(len(recBuf), time.Since(flushStart))
	return recBuf
}

// isClosedErr reports whether the read failed because Shutdown closed
// the socket.
func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed)
}
