// Batched ingestion: the send-side counterpart of the UDP collector. An
// Ingestor sits between a packet source (pcap reader, trace generator,
// capture loop) and a recorder, accumulating packets into fixed-size
// batches and handing each batch to the recorder's batched update path in
// one call. Against a shard.Sharded recorder this is the full pipeline the
// ROADMAP targets: batch at the edge, route once, lock each shard once per
// batch.
package collector

import (
	"fmt"

	"repro/flow"
)

// DefaultBatchSize is the ingestion batch size used when a non-positive
// size is requested. 256 packets keeps the staging buffers well inside L1
// while amortizing the per-batch costs to noise.
const DefaultBatchSize = 256

// BatchRecorder is the ingestion surface the pipeline needs from a
// recorder; flowmon.Recorder (and thus shard.Sharded) satisfies it.
type BatchRecorder interface {
	UpdateBatch(pkts []flow.Packet)
}

// Ingestor accumulates packets into batches and feeds a recorder. It is
// not safe for concurrent use; run one Ingestor per feeding goroutine
// (shard.Sharded serializes per shard underneath).
type Ingestor struct {
	rec     BatchRecorder
	buf     []flow.Packet
	packets uint64
	batches uint64
}

// NewIngestor builds an ingestor feeding rec in batches of batchSize
// packets (DefaultBatchSize if <= 0).
func NewIngestor(rec BatchRecorder, batchSize int) (*Ingestor, error) {
	if rec == nil {
		return nil, fmt.Errorf("collector: nil recorder")
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &Ingestor{rec: rec, buf: make([]flow.Packet, 0, batchSize)}, nil
}

// Add buffers one packet, flushing to the recorder when the batch fills.
func (g *Ingestor) Add(p flow.Packet) {
	g.buf = append(g.buf, p)
	if len(g.buf) == cap(g.buf) {
		g.Flush()
	}
}

// AddBatch buffers a slice of packets, flushing full batches as it goes.
// The input slice is not retained.
func (g *Ingestor) AddBatch(pkts []flow.Packet) {
	for len(pkts) > 0 {
		n := cap(g.buf) - len(g.buf)
		if n > len(pkts) {
			n = len(pkts)
		}
		g.buf = append(g.buf, pkts[:n]...)
		pkts = pkts[n:]
		if len(g.buf) == cap(g.buf) {
			g.Flush()
		}
	}
}

// Flush hands any buffered packets to the recorder as one (possibly short)
// batch. Callers must Flush after the last Add or packets still staged in
// the ingestor are lost.
func (g *Ingestor) Flush() {
	if len(g.buf) == 0 {
		return
	}
	g.rec.UpdateBatch(g.buf)
	g.packets += uint64(len(g.buf))
	g.batches++
	g.buf = g.buf[:0]
}

// Packets returns how many packets have been delivered to the recorder
// (buffered, unflushed packets are not counted).
func (g *Ingestor) Packets() uint64 { return g.packets }

// Batches returns how many batches have been delivered to the recorder.
func (g *Ingestor) Batches() uint64 { return g.batches }

// Replay streams an entire packet slice through a fresh ingestor,
// including the final partial batch — the one-call form used by the
// benchmark harness and cmd/flowbench.
func Replay(rec BatchRecorder, pkts []flow.Packet, batchSize int) error {
	g, err := NewIngestor(rec, batchSize)
	if err != nil {
		return err
	}
	g.AddBatch(pkts)
	g.Flush()
	return nil
}
