// Package collector runs the receive side of the flow-record collection
// pipeline as a managed service: a UDP listener decodes NetFlow v5
// datagrams and hands completed epochs to a sink (typically a
// recordstore.Writer). The server owns its goroutine per the "no
// fire-and-forget" rule: Start spawns it, Shutdown signals it and waits.
package collector

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/flow"
	"repro/netflow"
)

// Sink receives one completed epoch of flow records. Implementations must
// not retain the slice.
type Sink func(ts time.Time, records []flow.Record)

// Config parameterizes a collector server.
type Config struct {
	// Listen is the UDP address to bind, e.g. "127.0.0.1:2055".
	Listen string
	// EpochGap closes an epoch after this long without datagrams
	// (default 1s).
	EpochGap time.Duration
	// ReadBuffer sizes the socket receive buffer (default 4 MiB).
	ReadBuffer int
}

// Stats summarizes a collector's lifetime counters.
type Stats struct {
	Datagrams uint64
	Records   uint64
	Epochs    uint64
	Lost      uint64 // inferred from sequence gaps
	BadData   uint64 // undecodable datagrams
}

// Server is a running collector.
type Server struct {
	cfg  Config
	conn *net.UDPConn
	sink Sink

	stop chan struct{}
	done chan struct{}

	mu    sync.Mutex
	stats Stats
}

// Start binds the socket and spawns the receive loop. The returned server
// must be stopped with Shutdown.
func Start(cfg Config, sink Sink) (*Server, error) {
	if sink == nil {
		return nil, errors.New("collector: nil sink")
	}
	if cfg.EpochGap <= 0 {
		cfg.EpochGap = time.Second
	}
	if cfg.ReadBuffer <= 0 {
		cfg.ReadBuffer = 4 << 20
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("collector: resolve %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: listen: %w", err)
	}
	if err := conn.SetReadBuffer(cfg.ReadBuffer); err != nil {
		conn.Close()
		return nil, fmt.Errorf("collector: set read buffer: %w", err)
	}
	s := &Server{
		cfg:  cfg,
		conn: conn,
		sink: sink,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.loop()
	return s, nil
}

// Addr returns the bound address (useful with a ":0" listen port).
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Stats returns a snapshot of the lifetime counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Shutdown stops the receive loop, flushes any open epoch to the sink, and
// waits for the goroutine to exit. It is safe to call once.
func (s *Server) Shutdown() {
	close(s.stop)
	s.conn.Close() // unblocks the read
	<-s.done
}

func (s *Server) loop() {
	defer close(s.done)

	buf := make([]byte, netflow.MaxDatagramLen)
	dec := netflow.NewCollector()
	var recBuf []flow.Record
	var epochStart time.Time
	epochOpen := false

	flush := func() {
		if !epochOpen {
			return
		}
		// Epoch drain reuses the decoder and one record buffer: the sink
		// contract (no retention) lets the next epoch overwrite both.
		recBuf = dec.AppendFlowRecords(recBuf[:0])
		s.mu.Lock()
		s.stats.Epochs++
		s.stats.Lost += dec.Lost()
		s.mu.Unlock()
		s.sink(epochStart, recBuf)
		dec.Reset()
		epochOpen = false
	}
	defer flush()

	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if err := s.conn.SetReadDeadline(time.Now().Add(s.cfg.EpochGap)); err != nil {
			return
		}
		n, _, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				flush() // quiet period closes the epoch
				continue
			}
			return // socket closed (Shutdown) or fatal
		}
		if !epochOpen {
			epochStart = time.Now().UTC()
			epochOpen = true
		}
		s.mu.Lock()
		s.stats.Datagrams++
		s.mu.Unlock()
		before := dec.Count()
		if err := dec.Ingest(buf[:n]); err != nil {
			s.mu.Lock()
			s.stats.BadData++
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		s.stats.Records += uint64(dec.Count() - before)
		s.mu.Unlock()
	}
}
