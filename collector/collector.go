// Package collector runs the receive side of the flow-record collection
// pipeline as a managed service: a UDP frontend decodes NetFlow v5
// datagrams and hands completed epochs to a sink (typically a
// recordstore.Writer). The frontend scales across cores — N SO_REUSEPORT
// sockets, each with a reader goroutine doing batched reads (see
// frontend.go) — while epoch rotation stays one shared, gap-driven
// boundary. The server owns its goroutines per the "no fire-and-forget"
// rule: Start spawns them, Shutdown signals them and waits.
package collector

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/flow"
	"repro/netflow"
)

// Sink receives one completed epoch of flow records. Implementations must
// not retain the slice.
type Sink func(ts time.Time, records []flow.Record)

// Config parameterizes a collector server.
type Config struct {
	// Listen is the UDP address to bind, e.g. "127.0.0.1:2055".
	Listen string
	// EpochGap closes an epoch after this long without datagrams
	// (default 1s).
	EpochGap time.Duration
	// ReadBuffer sizes each socket's receive buffer (default 4 MiB).
	ReadBuffer int
	// Readers is the number of reader goroutines (default 1). More than
	// one requires ReusePort on a supporting platform: each reader then
	// owns its own socket. Otherwise the server falls back to a single
	// reader on a single socket.
	Readers int
	// ReusePort binds one SO_REUSEPORT socket per reader so the kernel
	// fans incoming datagrams out across them by 4-tuple hash.
	ReusePort bool
	// Batch caps the datagrams drained per reader wakeup where batched
	// reads are available (default DefaultReadBatch).
	Batch int
	// Metrics, when non-nil, receives event-time epoch-flush
	// observations (see NewMetrics). The datagram hot path is not
	// instrumented here — its counters are exposed by the
	// RegisterMetrics sampler instead.
	Metrics *Metrics
}

// Stats summarizes a collector's lifetime counters, folded across all
// readers. The snapshot is internally consistent per counter (each is an
// atomic), not across counters.
type Stats struct {
	Datagrams uint64
	Records   uint64
	Epochs    uint64
	Lost      uint64 // inferred from per-exporter sequence gaps
	BadData   uint64 // undecodable datagrams
}

// Server is a running collector frontend.
type Server struct {
	cfg     Config
	conns   []*net.UDPConn
	readers []*reader
	sink    Sink

	stop chan struct{}
	done chan struct{}
	once sync.Once

	readerWG sync.WaitGroup

	// Shared epoch state, written by readers and read by the rotation
	// coordinator.
	lastPkt    atomic.Int64 // unix nanos of the newest datagram
	epochOpen  atomic.Bool
	epochStart atomic.Int64

	epochs atomic.Uint64
	lost   atomic.Uint64
}

// Start binds the socket(s) and spawns the reader goroutines and the
// rotation coordinator. The returned server must be stopped with
// Shutdown.
func Start(cfg Config, sink Sink) (*Server, error) {
	if sink == nil {
		return nil, errors.New("collector: nil sink")
	}
	if cfg.EpochGap <= 0 {
		cfg.EpochGap = time.Second
	}
	if cfg.ReadBuffer <= 0 {
		cfg.ReadBuffer = 4 << 20
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 1
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultReadBatch
	}
	conns, nReaders, err := openSockets(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:  cfg,
		sink: sink,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.conns = conns
	s.readers = make([]*reader, nReaders)
	for i := range s.readers {
		conn := conns[0]
		if len(conns) > 1 {
			conn = conns[i]
		}
		bc, err := newBatchConn(conn, cfg.Batch)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		s.readers[i] = &reader{bc: bc, col: netflow.NewCollector()}
	}
	s.readerWG.Add(len(s.readers))
	for _, r := range s.readers {
		go s.readLoop(r)
	}
	go s.run()
	return s, nil
}

// Addr returns the bound address (useful with a ":0" listen port). All
// sockets of a multi-reader frontend share it.
func (s *Server) Addr() net.Addr { return s.conns[0].LocalAddr() }

// Readers returns the effective reader count — what was requested, or 1
// after the single-socket fallback.
func (s *Server) Readers() int { return len(s.readers) }

// Sockets returns how many UDP sockets are bound (equal to Readers when
// SO_REUSEPORT is active, 1 otherwise).
func (s *Server) Sockets() int { return len(s.conns) }

// BatchMode names the batched-read implementation in use ("recvmmsg" on
// 64-bit Linux, "single" elsewhere).
func (s *Server) BatchMode() string { return batchReadMode }

// Stats returns a snapshot of the lifetime counters folded across all
// readers.
func (s *Server) Stats() Stats {
	st := Stats{Epochs: s.epochs.Load(), Lost: s.lost.Load()}
	for _, r := range s.readers {
		st.Datagrams += r.datagrams.Load()
		st.Records += r.records.Load()
		st.BadData += r.badData.Load()
	}
	return st
}

// ReaderStats returns the per-reader counter breakdown, index-aligned
// with the reader goroutines.
func (s *Server) ReaderStats() []ReaderStats {
	out := make([]ReaderStats, len(s.readers))
	for i, r := range s.readers {
		out[i] = ReaderStats{
			Datagrams: r.datagrams.Load(),
			Records:   r.records.Load(),
			BadData:   r.badData.Load(),
			Batches:   r.batches.Load(),
			ReadErrs:  r.readErrs.Load(),
		}
	}
	return out
}

// SourceStats returns the lifetime per-exporter accounting, merged
// across readers (with SO_REUSEPORT each exporter stream lives on
// exactly one reader, so the merge is a disjoint union).
func (s *Server) SourceStats() map[netflow.SourceKey]netflow.SourceStats {
	out := make(map[netflow.SourceKey]netflow.SourceStats)
	var keys []netflow.SourceKey
	for _, r := range s.readers {
		r.mu.Lock()
		keys = r.col.AppendSourceKeys(keys[:0])
		for _, k := range keys {
			st, _ := r.col.SourceStats(k)
			agg := out[k]
			agg.Datagrams += st.Datagrams
			agg.Records += st.Records
			agg.Lost += st.Lost
			out[k] = agg
		}
		r.mu.Unlock()
	}
	return out
}

// Shutdown stops the readers, flushes any open epoch to the sink, and
// waits for all goroutines to exit. It is idempotent: the first call does
// the work, concurrent and later calls wait for it and return.
func (s *Server) Shutdown() {
	s.once.Do(func() {
		close(s.stop)
		for _, c := range s.conns {
			c.Close() // unblocks the reads
		}
		<-s.done
	})
}
