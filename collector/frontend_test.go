package collector

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/flow"
	"repro/netflow"
)

// Shutdown is documented idempotent: a second (or concurrent) call must
// return instead of panicking on a double close.
func TestShutdownIdempotent(t *testing.T) {
	srv, err := Start(Config{Listen: "127.0.0.1:0"}, func(time.Time, []flow.Record) {})
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	srv.Shutdown() // second sequential call

	srv2, err := Start(Config{Listen: "127.0.0.1:0"}, func(time.Time, []flow.Record) {})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ { // concurrent calls race the close
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv2.Shutdown()
		}()
	}
	wg.Wait()
	_ = srv2.Stats()
}

// Without SO_REUSEPORT a multi-reader request must fall back to one
// reader on one socket — per-source sequence accounting is only correct
// when one exporter's datagrams stay on one reader.
func TestMultiReaderNeedsReusePort(t *testing.T) {
	srv, err := Start(Config{Listen: "127.0.0.1:0", Readers: 4}, func(time.Time, []flow.Record) {})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if srv.Readers() != 1 || srv.Sockets() != 1 {
		t.Errorf("Readers=%d Sockets=%d without ReusePort, want 1/1", srv.Readers(), srv.Sockets())
	}
}

// A multi-reader frontend must bind one socket per reader and still
// deliver every record into the merged epoch.
func TestMultiReaderReusePort(t *testing.T) {
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		t.Skip("SO_REUSEPORT path not built on", runtime.GOOS)
	}
	sink := &epochSink{}
	srv, err := Start(Config{
		Listen: "127.0.0.1:0", EpochGap: 200 * time.Millisecond,
		Readers: 4, ReusePort: true,
	}, sink.sink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if srv.Readers() != 4 || srv.Sockets() != 4 {
		t.Fatalf("Readers=%d Sockets=%d, want 4/4", srv.Readers(), srv.Sockets())
	}

	// Many exporters so the kernel's 4-tuple hash spreads across sockets.
	const exporters = 16
	const perExporter = 40
	var wg sync.WaitGroup
	for e := 0; e < exporters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			conn, err := net.Dial("udp", srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			exp := netflow.NewExporter(func(b []byte) error {
				_, err := conn.Write(b)
				return err
			})
			recs := make([]flow.Record, perExporter)
			for i := range recs {
				recs[i] = flow.Record{
					Key:   flow.Key{SrcIP: uint32(e<<16 | i), Proto: 17},
					Count: 1,
				}
			}
			if err := exp.Export(recs, 100); err != nil {
				t.Error(err)
			}
		}(e)
	}
	wg.Wait()

	want := uint64(exporters * perExporter)
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().Records == want })
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().Epochs >= 1 })
	st := srv.Stats()
	if st.Records != want || st.Lost != 0 || st.BadData != 0 {
		t.Errorf("stats = %+v, want %d records and no loss", st, want)
	}
	total := 0
	for _, ep := range sink.snapshot() {
		total += len(ep)
	}
	if total != int(want) {
		t.Errorf("sink saw %d records across epochs, want %d", total, want)
	}
	// Loopback traffic is same-4-tuple per exporter; each exporter stream
	// must appear exactly once in the merged per-source view.
	srcs := srv.SourceStats()
	if len(srcs) != exporters {
		t.Errorf("SourceStats has %d streams, want %d", len(srcs), exporters)
	}
	var rs uint64
	for _, r := range srv.ReaderStats() {
		rs += r.Records
	}
	if rs != want {
		t.Errorf("per-reader records sum to %d, want %d", rs, want)
	}
}

// rawExporter sends hand-built datagrams with full control over the
// sequence numbers, so the test can drop specific datagrams and assert
// the inferred loss lands on the right exporter stream.
type rawExporter struct {
	t    *testing.T
	conn net.Conn
	seq  uint32
}

func newRawExporter(t *testing.T, to net.Addr) *rawExporter {
	t.Helper()
	conn, err := net.Dial("udp", to.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawExporter{t: t, conn: conn}
}

// send exports one datagram of n records; drop advances the sequence
// space as if the datagram had been sent but lost in the network.
func (r *rawExporter) send(n int, drop bool) {
	recs := make([]netflow.Record, n)
	for i := range recs {
		recs[i] = netflow.Record{SrcIP: r.seq + uint32(i), Packets: 1}
	}
	b, err := netflow.Encode(nil, netflow.Header{FlowSequence: r.seq}, recs)
	if err != nil {
		r.t.Fatal(err)
	}
	r.seq += uint32(n)
	if drop {
		return
	}
	if _, err := r.conn.Write(b); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rawExporter) local() net.Addr { return r.conn.LocalAddr() }

// Concurrent exporters with interleaved sequence spaces: record totals,
// per-source loss attribution and epoch counts must all hold. Runs under
// -race in CI.
func TestConcurrentExportersLossAccounting(t *testing.T) {
	sink := &epochSink{}
	srv, err := Start(Config{Listen: "127.0.0.1:0", EpochGap: 200 * time.Millisecond}, sink.sink)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	// Exporter A drops its 3rd datagram (20 records), B drops nothing,
	// C drops two (25 records). UDP on loopback does not reorder, and
	// each exporter sends from its own goroutine.
	a := newRawExporter(t, srv.Addr())
	b := newRawExporter(t, srv.Addr())
	c := newRawExporter(t, srv.Addr())
	var wg sync.WaitGroup
	run := func(e *rawExporter, sizes []int, drops map[int]bool) {
		defer wg.Done()
		for i, n := range sizes {
			e.send(n, drops[i])
		}
	}
	wg.Add(3)
	go run(a, []int{20, 20, 20, 20, 20}, map[int]bool{2: true})
	go run(b, []int{30, 30, 30}, nil)
	go run(c, []int{25, 25, 25, 25}, map[int]bool{1: true, 2: true})
	wg.Wait()

	wantRecords := uint64(4*20 + 3*30 + 2*25)
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().Records == wantRecords })
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().Epochs >= 1 })

	st := srv.Stats()
	if st.Records != wantRecords {
		t.Errorf("Records = %d, want %d", st.Records, wantRecords)
	}
	if st.Lost != 20+50 {
		t.Errorf("Lost = %d, want 70", st.Lost)
	}
	if st.Epochs == 0 {
		t.Error("no epochs closed")
	}

	// Loss must be attributed to the exporter that dropped, not smeared
	// across streams by the interleaving.
	srcs := srv.SourceStats()
	lostFor := func(e *rawExporter) uint64 {
		for k, v := range srcs {
			if k.Addr.String() == e.local().String() {
				return v.Lost
			}
		}
		t.Errorf("no source stats for %s", e.local())
		return 0
	}
	if got := lostFor(a); got != 20 {
		t.Errorf("exporter a lost = %d, want 20", got)
	}
	if got := lostFor(b); got != 0 {
		t.Errorf("exporter b lost = %d, want 0", got)
	}
	if got := lostFor(c); got != 50 {
		t.Errorf("exporter c lost = %d, want 50", got)
	}

	// A second wave after the epoch closed: the cross-epoch sequence
	// continuity must catch a drop spanning the quiet gap.
	epochsBefore := srv.Stats().Epochs
	a.send(20, true) // dropped in the gap
	a.send(20, false)
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().Epochs > epochsBefore })
	if got := srv.Stats().Lost; got != 70+20 {
		t.Errorf("Lost = %d after cross-epoch drop, want 90", got)
	}
}
