// Epoch persistence: the adapter that drains collector epochs into a
// recordstore.Writer, completing the collection pipeline — recorder →
// (NetFlow export) → collector → record store — through the
// allocation-free epoch path.
package collector

import (
	"sync"
	"time"

	"repro/flow"
	"repro/recordstore"
)

// EpochStore adapts any recordstore.EpochWriter — a flat stream Writer,
// a durable FileWriter, or a tiered directory store — into a collector
// Sink. It is safe for concurrent use and sticky on error: a failed
// WriteEpoch may have left a partial epoch on the stream, so writing
// further epochs would corrupt the store — later epochs are counted in
// Dropped and Err reports the first failure (a UDP sink has nobody to
// return errors to mid-stream). Empty epochs (e.g. a quiet-gap window
// that saw only undecodable datagrams) are skipped, not persisted.
type EpochStore struct {
	mu      sync.Mutex
	w       recordstore.EpochWriter
	err     error
	epochs  uint64
	dropped uint64
}

// NewEpochStore wraps w.
func NewEpochStore(w recordstore.EpochWriter) *EpochStore {
	return &EpochStore{w: w}
}

// Sink is the collector.Sink that persists one epoch. The records slice is
// not retained; recordstore.Writer sorts and encodes from its own reused
// scratch, so the whole drain path is allocation-free at steady state.
func (s *EpochStore) Sink(ts time.Time, records []flow.Record) {
	if len(records) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		s.dropped++
		return
	}
	if s.err = s.w.WriteEpoch(ts, records); s.err == nil {
		s.epochs++
	}
}

// Flush forwards to the writer, pushing buffered epochs to the underlying
// stream.
func (s *EpochStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the first write error, nil if all epochs landed.
func (s *EpochStore) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Epochs returns how many epochs were persisted.
func (s *EpochStore) Epochs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs
}

// Dropped returns how many non-empty epochs were discarded after the
// first write error.
func (s *EpochStore) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
