//go:build linux

package collector

// soReusePort is SO_REUSEPORT, which the frozen syscall package never
// picked up on Linux (it lives in golang.org/x/sys); the value is ABI
// across Linux architectures.
const soReusePort = 0xf
