package collector

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/flow"
	"repro/netflow"
)

// epochSink collects flushed epochs under a lock.
type epochSink struct {
	mu     sync.Mutex
	epochs [][]flow.Record
}

func (e *epochSink) sink(_ time.Time, records []flow.Record) {
	cp := make([]flow.Record, len(records))
	copy(cp, records)
	e.mu.Lock()
	e.epochs = append(e.epochs, cp)
	e.mu.Unlock()
}

func (e *epochSink) snapshot() [][]flow.Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]flow.Record, len(e.epochs))
	copy(out, e.epochs)
	return out
}

func startTestServer(t *testing.T, gap time.Duration) (*Server, *epochSink) {
	t.Helper()
	sink := &epochSink{}
	srv, err := Start(Config{Listen: "127.0.0.1:0", EpochGap: gap}, sink.sink)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, sink
}

func export(t *testing.T, to net.Addr, records []flow.Record) {
	t.Helper()
	conn, err := net.Dial("udp", to.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	exp := netflow.NewExporter(func(b []byte) error {
		_, err := conn.Write(b)
		return err
	})
	if err := exp.Export(records, 100); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met before timeout")
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{Listen: "127.0.0.1:0"}, nil); err == nil {
		t.Error("accepted nil sink")
	}
	if _, err := Start(Config{Listen: "999.0.0.1:x"}, func(time.Time, []flow.Record) {}); err == nil {
		t.Error("accepted bad listen address")
	}
}

func TestCollectOneEpoch(t *testing.T) {
	srv, sink := startTestServer(t, 150*time.Millisecond)

	records := make([]flow.Record, 75)
	for i := range records {
		records[i] = flow.Record{Key: flow.Key{SrcIP: uint32(i + 1), Proto: 6}, Count: uint32(i + 1)}
	}
	export(t, srv.Addr(), records)

	waitFor(t, 3*time.Second, func() bool { return len(sink.snapshot()) >= 1 })
	epochs := sink.snapshot()
	if len(epochs[0]) != len(records) {
		t.Fatalf("epoch has %d records, want %d", len(epochs[0]), len(records))
	}
	st := srv.Stats()
	if st.Records != 75 || st.Datagrams != 3 || st.Epochs != 1 || st.BadData != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQuietGapSplitsEpochs(t *testing.T) {
	srv, sink := startTestServer(t, 100*time.Millisecond)

	recs := []flow.Record{{Key: flow.Key{SrcIP: 1}, Count: 1}}
	export(t, srv.Addr(), recs)
	waitFor(t, 3*time.Second, func() bool { return len(sink.snapshot()) >= 1 })
	export(t, srv.Addr(), recs)
	waitFor(t, 3*time.Second, func() bool { return len(sink.snapshot()) >= 2 })

	if got := srv.Stats().Epochs; got != 2 {
		t.Errorf("Epochs = %d, want 2", got)
	}
}

func TestBadDatagramCounted(t *testing.T) {
	srv, sink := startTestServer(t, 100*time.Millisecond)

	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("garbage datagram")); err != nil {
		t.Fatal(err)
	}
	export(t, srv.Addr(), []flow.Record{{Key: flow.Key{SrcIP: 1}, Count: 1}})

	waitFor(t, 3*time.Second, func() bool { return len(sink.snapshot()) >= 1 })
	st := srv.Stats()
	if st.BadData != 1 {
		t.Errorf("BadData = %d, want 1", st.BadData)
	}
	if st.Records != 1 {
		t.Errorf("Records = %d, want 1", st.Records)
	}
}

func TestShutdownFlushesOpenEpoch(t *testing.T) {
	// Use a long gap so the epoch is still open when Shutdown runs.
	sink := &epochSink{}
	srv, err := Start(Config{Listen: "127.0.0.1:0", EpochGap: time.Hour}, sink.sink)
	if err != nil {
		t.Fatal(err)
	}
	export(t, srv.Addr(), []flow.Record{{Key: flow.Key{SrcIP: 9}, Count: 3}})
	waitFor(t, 3*time.Second, func() bool { return srv.Stats().Records == 1 })

	srv.Shutdown()
	epochs := sink.snapshot()
	if len(epochs) != 1 || len(epochs[0]) != 1 {
		t.Fatalf("shutdown flushed %v", epochs)
	}
	if epochs[0][0].Count != 3 {
		t.Errorf("flushed record = %+v", epochs[0][0])
	}
}

func TestShutdownIdempotentGoroutine(t *testing.T) {
	sink := &epochSink{}
	srv, err := Start(Config{Listen: "127.0.0.1:0"}, sink.sink)
	if err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	// The loop goroutine must have exited; a second Stats call still works.
	_ = srv.Stats()
}
