package collector

import (
	"fmt"
	"strconv"
	"time"

	"repro/telemetry"
)

// Metrics carries the collector's event-time instruments: signals that
// must be captured when they happen (sizes and latencies of epoch
// flushes) rather than polled. Everything else the frontend counts —
// datagrams, records, decode errors, sequence loss — already lives in
// per-reader atomics, so RegisterMetrics exposes those through a
// scrape-time sampler at zero hot-path cost.
//
// All fields are nil-safe; an entirely nil *Metrics in Config is the
// uninstrumented default.
type Metrics struct {
	// EpochRecords is the merged record count per flushed epoch.
	EpochRecords *telemetry.Histogram
	// FlushNs is the wall time of one epoch flush: merging every
	// reader's collector plus running the sink.
	FlushNs *telemetry.Histogram
}

// NewMetrics registers the collector's event-time instruments under
// the given label pairs (e.g. "vantage", name — empty for a
// single-vantage daemon) and returns them for Config.Metrics.
func NewMetrics(reg *telemetry.Registry, labelPairs ...string) *Metrics {
	return &Metrics{
		EpochRecords: reg.Histogram(
			telemetry.Name("collector_epoch_records", labelPairs...),
			"flow records per flushed epoch"),
		FlushNs: reg.Histogram(
			telemetry.Name("collector_epoch_flush_ns", labelPairs...),
			"wall time of one epoch flush (merge all readers + sink), ns"),
	}
}

// RegisterMetrics exposes the frontend's existing counters — folded
// totals, the per-reader breakdown, and per-exporter sequence-loss
// accounting — as a scrape-time sampler. Nothing on the datagram path
// changes: the sampler polls the same atomics the readers already
// maintain, only when /metrics is actually scraped.
func (s *Server) RegisterMetrics(reg *telemetry.Registry, labelPairs ...string) {
	reg.RegisterSampler(func(e *telemetry.Expo) {
		st := s.Stats()
		name := func(base string, extra ...string) string {
			return telemetry.Name(base, append(append([]string{}, labelPairs...), extra...)...)
		}
		e.Counter(name("collector_datagrams_total"), "datagrams received", st.Datagrams)
		e.Counter(name("collector_records_total"), "flow records decoded", st.Records)
		e.Counter(name("collector_epochs_total"), "epochs flushed to the sink", st.Epochs)
		e.Counter(name("collector_lost_total"), "records lost per exporter sequence gaps", st.Lost)
		e.Counter(name("collector_bad_datagrams_total"), "undecodable datagrams", st.BadData)
		for i, rs := range s.ReaderStats() {
			r := strconv.Itoa(i)
			e.Counter(name("collector_reader_datagrams_total", "reader", r),
				"datagrams received by one reader", rs.Datagrams)
			e.Counter(name("collector_reader_records_total", "reader", r),
				"flow records decoded by one reader", rs.Records)
			e.Counter(name("collector_reader_bad_datagrams_total", "reader", r),
				"undecodable datagrams on one reader", rs.BadData)
			e.Counter(name("collector_reader_batches_total", "reader", r),
				"read wakeups on one reader (datagrams/batches = realized batch size)", rs.Batches)
			e.Counter(name("collector_reader_read_errors_total", "reader", r),
				"transient receive errors on one reader", rs.ReadErrs)
		}
		for key, src := range s.SourceStats() {
			exp := fmt.Sprintf("%s/%d.%d", key.Addr, key.EngineType, key.EngineID)
			e.Counter(name("collector_exporter_datagrams_total", "exporter", exp),
				"datagrams received from one exporter stream", src.Datagrams)
			e.Counter(name("collector_exporter_records_total", "exporter", exp),
				"flow records decoded from one exporter stream", src.Records)
			e.Counter(name("collector_exporter_lost_total", "exporter", exp),
				"records lost to sequence gaps on one exporter stream", src.Lost)
		}
	})
}

// observeFlush records one epoch flush into the event-time
// instruments; a nil receiver (telemetry not wired) is free.
func (m *Metrics) observeFlush(records int, took time.Duration) {
	if m == nil {
		return
	}
	m.EpochRecords.Observe(uint64(records))
	m.FlushNs.ObserveDuration(took)
}
