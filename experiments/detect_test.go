package experiments

import (
	"testing"

	"repro/detect"
	"repro/flow"
)

// TestDetectInjectionAccuracy is the detection subsystem's acceptance
// gate (run in CI as the detection-quality job): over a synthetic
// workload of 30+ epochs with heavy changes, superspreaders, fan-in
// victims and slow ramps injected into realistic background traffic,
// the detector must reach at least 0.9 precision AND recall on every
// kind. The workload and evaluator are the exact machinery flowbench's
// detect experiment reports in BENCH_detect.json.
func TestDetectInjectionAccuracy(t *testing.T) {
	cfg := DetectTraceConfig{Epochs: 30}
	epochs := GenDetectTrace(cfg)
	if len(epochs) < 20 {
		t.Fatalf("only %d epochs generated, need >= 20", len(epochs))
	}
	injections := 0
	for _, ep := range epochs {
		injections += len(ep.Spreaders) + len(ep.Victims)
	}
	if injections < 10 {
		t.Fatalf("only %d injections over %d epochs, workload too thin", injections, len(epochs))
	}

	d, err := detect.NewDetector(detect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eval := EvalDetect(d, epochs)

	if eval.ChangeTP == 0 {
		t.Fatal("no injected heavy change was ever flagged")
	}
	if eval.SpreadTP == 0 {
		t.Fatal("no injected superspreader was ever flagged")
	}
	if eval.FanInTP == 0 {
		t.Fatal("no injected victim was ever flagged")
	}
	if eval.RampEvents == 0 || eval.RampsDetected == 0 {
		t.Fatalf("no injected ramp was ever flagged (eval: %+v)", eval)
	}
	check := func(name string, got float64) {
		if got < 0.9 {
			t.Errorf("%s = %.3f, want >= 0.9 (eval: %+v)", name, got, eval)
		}
	}
	check("change precision", eval.ChangePrecision())
	check("change recall", eval.ChangeRecall())
	check("spreader precision", eval.SpreadPrecision())
	check("spreader recall", eval.SpreadRecall())
	check("fan-in precision", eval.FanInPrecision())
	check("fan-in recall", eval.FanInRecall())
	check("forecast precision", eval.ForecastPrecision())
	check("ramp recall", eval.RampRecall())
}

// TestNetwideInjectionAccuracy is the cross-vantage acceptance gate: on
// a multi-vantage workload where keys spike past the local threshold at
// a quorum of vantages, or below every local threshold but past the
// netwide line once merged, the correlator must promote with at least
// 0.9 precision AND recall — and no vantage's evidence may arrive late.
func TestNetwideInjectionAccuracy(t *testing.T) {
	cfg := NetwideTraceConfig{Epochs: 30}
	epochs := GenNetwideTrace(cfg)
	truths := 0
	for _, ep := range epochs {
		truths += len(ep.NetwideKeys)
	}
	if truths < 10 {
		t.Fatalf("only %d netwide truth keys over %d epochs, workload too thin", truths, len(epochs))
	}
	eval, err := EvalNetwide(cfg, epochs)
	if err != nil {
		t.Fatal(err)
	}
	if eval.TP == 0 {
		t.Fatalf("no injected netwide change was ever promoted (eval: %+v)", eval)
	}
	if eval.Late != 0 {
		t.Errorf("%d summaries arrived late", eval.Late)
	}
	if got := eval.Precision(); got < 0.9 {
		t.Errorf("netwide precision = %.3f, want >= 0.9 (eval: %+v)", got, eval)
	}
	if got := eval.Recall(); got < 0.9 {
		t.Errorf("netwide recall = %.3f, want >= 0.9 (eval: %+v)", got, eval)
	}
}

// TestGenNetwideTraceDeterministic pins the multi-vantage generator:
// deterministic output and a truth set only on and right after
// injection epochs.
func TestGenNetwideTraceDeterministic(t *testing.T) {
	cfg := NetwideTraceConfig{Epochs: 20, Seed: 11}
	a, b := GenNetwideTrace(cfg), GenNetwideTrace(cfg)
	cfgD := cfg.withDefaults()
	for e := range a {
		if len(a[e].Views) != cfgD.Vantages {
			t.Fatalf("epoch %d: %d views, want %d", e, len(a[e].Views), cfgD.Vantages)
		}
		for v := range a[e].Views {
			if len(a[e].Views[v]) != len(b[e].Views[v]) {
				t.Fatalf("epoch %d view %d: non-deterministic generation", e, v)
			}
		}
		onInjection := e >= cfgD.Warmup && (e-cfgD.Warmup)%cfgD.InjectEvery <= 1
		if !onInjection && len(a[e].NetwideKeys) != 0 {
			t.Fatalf("epoch %d: unexpected truth %v", e, a[e].NetwideKeys)
		}
	}
}

// TestGenDetectTraceTruth pins the generator's invariants: deterministic
// output, truth only on and right after injection epochs, background
// deltas bounded far below the change threshold.
func TestGenDetectTraceTruth(t *testing.T) {
	cfg := DetectTraceConfig{Epochs: 24, Seed: 7}
	a, b := GenDetectTrace(cfg), GenDetectTrace(cfg)
	for e := range a {
		if len(a[e].Records) != len(b[e].Records) {
			t.Fatalf("epoch %d: non-deterministic generation", e)
		}
	}

	cfgD := cfg.withDefaults()
	prev := map[flow.Key]uint32{}
	for e, ep := range a {
		truth := map[flow.Key]bool{}
		for _, k := range ep.ChangedKeys {
			truth[k] = true
		}
		// Every record's actual delta against the previous epoch must
		// agree with the declared truth: truth keys move by nearly
		// ChangeDelta (the spike, modulated by jitter), every other key
		// stays under the detector's default 1024 threshold.
		seen := map[flow.Key]uint32{}
		for _, r := range ep.Records {
			seen[r.Key] = r.Count
		}
		for k, c := range seen {
			delta := int64(c) - int64(prev[k])
			if delta < 0 {
				delta = -delta
			}
			if truth[k] && delta < int64(cfgD.ChangeDelta)/2 {
				t.Fatalf("epoch %d: truth key %v moved only %d, want ~%d", e, k, delta, cfgD.ChangeDelta)
			}
			if !truth[k] && delta >= 1024 && prev[k] != 0 {
				t.Fatalf("epoch %d: background key %v moved %d, crossing the detector threshold", e, k, delta)
			}
			delete(truth, k)
		}
		// Truth keys absent from this epoch must have vanished with a
		// previous count past the threshold (spiked flows never vanish,
		// so this should be empty).
		for k := range truth {
			if int64(prev[k]) < int64(cfgD.ChangeDelta) {
				t.Fatalf("epoch %d: truth key %v neither present nor a heavy vanish", e, k)
			}
		}
		prev = seen
	}
}
