package experiments

import (
	"testing"

	"repro/detect"
	"repro/flow"
)

// TestDetectInjectionAccuracy is the detection subsystem's acceptance
// gate: over a synthetic workload of 30+ epochs with heavy changes and
// superspreaders injected into realistic background traffic, the
// detector must reach at least 0.9 precision AND recall on both kinds.
// The workload and evaluator are the exact machinery flowbench's detect
// experiment reports in BENCH_detect.json.
func TestDetectInjectionAccuracy(t *testing.T) {
	cfg := DetectTraceConfig{Epochs: 30}
	epochs := GenDetectTrace(cfg)
	if len(epochs) < 20 {
		t.Fatalf("only %d epochs generated, need >= 20", len(epochs))
	}
	injections := 0
	for _, ep := range epochs {
		injections += len(ep.Spreaders)
	}
	if injections < 5 {
		t.Fatalf("only %d injections over %d epochs, workload too thin", injections, len(epochs))
	}

	d, err := detect.NewDetector(detect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eval := EvalDetect(d, epochs)

	if eval.ChangeTP == 0 {
		t.Fatal("no injected heavy change was ever flagged")
	}
	if eval.SpreadTP == 0 {
		t.Fatal("no injected superspreader was ever flagged")
	}
	check := func(name string, got float64) {
		if got < 0.9 {
			t.Errorf("%s = %.3f, want >= 0.9 (eval: %+v)", name, got, eval)
		}
	}
	check("change precision", eval.ChangePrecision())
	check("change recall", eval.ChangeRecall())
	check("spreader precision", eval.SpreadPrecision())
	check("spreader recall", eval.SpreadRecall())
}

// TestGenDetectTraceTruth pins the generator's invariants: deterministic
// output, truth only on and right after injection epochs, background
// deltas bounded far below the change threshold.
func TestGenDetectTraceTruth(t *testing.T) {
	cfg := DetectTraceConfig{Epochs: 24, Seed: 7}
	a, b := GenDetectTrace(cfg), GenDetectTrace(cfg)
	for e := range a {
		if len(a[e].Records) != len(b[e].Records) {
			t.Fatalf("epoch %d: non-deterministic generation", e)
		}
	}

	cfgD := cfg.withDefaults()
	prev := map[flow.Key]uint32{}
	for e, ep := range a {
		truth := map[flow.Key]bool{}
		for _, k := range ep.ChangedKeys {
			truth[k] = true
		}
		// Every record's actual delta against the previous epoch must
		// agree with the declared truth: truth keys move by nearly
		// ChangeDelta (the spike, modulated by jitter), every other key
		// stays under the detector's default 1024 threshold.
		seen := map[flow.Key]uint32{}
		for _, r := range ep.Records {
			seen[r.Key] = r.Count
		}
		for k, c := range seen {
			delta := int64(c) - int64(prev[k])
			if delta < 0 {
				delta = -delta
			}
			if truth[k] && delta < int64(cfgD.ChangeDelta)/2 {
				t.Fatalf("epoch %d: truth key %v moved only %d, want ~%d", e, k, delta, cfgD.ChangeDelta)
			}
			if !truth[k] && delta >= 1024 && prev[k] != 0 {
				t.Fatalf("epoch %d: background key %v moved %d, crossing the detector threshold", e, k, delta)
			}
			delete(truth, k)
		}
		// Truth keys absent from this epoch must have vanished with a
		// previous count past the threshold (spiked flows never vanish,
		// so this should be empty).
		for k := range truth {
			if int64(prev[k]) < int64(cfgD.ChangeDelta) {
				t.Fatalf("epoch %d: truth key %v neither present nor a heavy vanish", e, k)
			}
		}
		prev = seen
	}
}
