// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each function returns structured rows; cmd/flowbench
// renders them as TSV, and bench_test.go runs reduced-scale versions as Go
// benchmarks.
//
// Scale parameters default to the paper's settings (1 MB of memory, up to
// 250K flows); callers may shrink them for quick runs.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/flow"
	"repro/flowmon"
	"repro/metrics"
	"repro/trace"
)

// DefaultMemory is the paper's 1 MB memory budget.
const DefaultMemory = 1 << 20

// DefaultSeed keeps every experiment reproducible.
const DefaultSeed = 1

// WriteTSV renders a header and rows as tab-separated values. A nil or
// empty header is skipped, so multi-section output can share one header.
func WriteTSV(w io.Writer, header []string, rows [][]string) error {
	if len(header) > 0 {
		if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
			return err
		}
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, "\t")); err != nil {
			return err
		}
	}
	return nil
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// runRecorder replays pkts into a fresh recorder of algorithm a.
func runRecorder(a flowmon.Algorithm, cfg flowmon.Config, pkts []flow.Packet) (flowmon.Recorder, error) {
	rec, err := flowmon.New(a, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: new %v: %w", a, err)
	}
	for _, p := range pkts {
		rec.Update(p)
	}
	return rec, nil
}

// genTrace builds the packet stream and ground truth for one profile/size.
func genTrace(p trace.Profile, flows int, seed uint64) ([]flow.Packet, *flow.Truth, error) {
	tr, err := trace.Generate(p, flows, seed)
	if err != nil {
		return nil, nil, err
	}
	return tr.Packets(seed), tr.Truth(), nil
}

// AppMetrics is one (trace, flow count, algorithm) measurement covering the
// metrics of Figs. 6, 7 and 8.
type AppMetrics struct {
	Trace         string
	Flows         int
	Algorithm     string
	FSC           float64 // Fig. 6
	CardinalityRE float64 // Fig. 7
	SizeARE       float64 // Fig. 8
}

// AppPerformance sweeps flow counts on one trace profile and scores every
// algorithm, producing the data behind Figs. 6-8.
func AppPerformance(p trace.Profile, flowCounts []int, memory int, seed uint64) ([]AppMetrics, error) {
	var out []AppMetrics
	for _, n := range flowCounts {
		pkts, truth, err := genTrace(p, n, seed)
		if err != nil {
			return nil, err
		}
		for _, a := range flowmon.All() {
			rec, err := runRecorder(a, flowmon.Config{MemoryBytes: memory, Seed: seed}, pkts)
			if err != nil {
				return nil, err
			}
			out = append(out, AppMetrics{
				Trace:         p.Name,
				Flows:         n,
				Algorithm:     a.String(),
				FSC:           metrics.FSC(rec.Records(), truth),
				CardinalityRE: metrics.CardinalityRE(rec.EstimateCardinality(), truth),
				SizeARE:       metrics.SizeARE(rec.EstimateSize, truth),
			})
		}
	}
	return out, nil
}

// AppMetricsRows renders AppMetrics for one of the three figures.
func AppMetricsRows(ms []AppMetrics, metric string) (header []string, rows [][]string) {
	header = []string{"trace", "flows", "algorithm", metric}
	for _, m := range ms {
		var v float64
		switch metric {
		case "FSC":
			v = m.FSC
		case "RE":
			v = m.CardinalityRE
		case "ARE":
			v = m.SizeARE
		}
		rows = append(rows, []string{m.Trace, fmt.Sprint(m.Flows), m.Algorithm, f4(v)})
	}
	return header, rows
}
