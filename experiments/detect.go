// Synthetic injection workload for the detection subsystem: epochs of
// stable background traffic with known heavy changes, superspreaders,
// DDoS victims (many sources fanning in on one destination) and slow
// ramps (per-epoch growth below the heavy-change threshold, visible only
// to the forecast CUSUM) injected at a fixed cadence, plus the evaluator
// that scores a detector against the injected ground truth. Both the
// acceptance tests and the flowbench detect experiment run on this, so
// the precision/recall numbers in BENCH_detect.json are reproducible
// from the same machinery the tests (and the CI detection-quality gate)
// gate on.
package experiments

import (
	"time"

	"repro/detect"
	"repro/flow"
	"repro/internal/hashing"
)

// DetectTraceConfig parameterizes the synthetic injection workload. The
// zero value takes every default.
type DetectTraceConfig struct {
	// Epochs is the total epoch count. Default 30.
	Epochs int
	// BackgroundFlows is the persistent background population; each flow
	// keeps a stable per-epoch count with small jitter. Default 2000.
	BackgroundFlows int
	// Warmup is how many epochs run clean before the first injection,
	// letting the detector's baselines fill. Default 10.
	Warmup int
	// InjectEvery is the injection cadence after warmup. Default 3.
	InjectEvery int
	// ChangeKeys is how many background flows spike per injection.
	// Default 3.
	ChangeKeys int
	// ChangeDelta is the spike magnitude in packets — both the onset and
	// the next epoch's recovery are heavy changes of this size.
	// Default 16384.
	ChangeDelta uint32
	// SpreaderFanout is the distinct-destination count of each injected
	// superspreader source. Default 512.
	SpreaderFanout int
	// VictimSources is the distinct-source count fanning in on each
	// injected DDoS victim destination. Default 512.
	VictimSources int
	// RampKeys is how many slow-ramp flows are injected; ramp starts
	// stagger by two epochs from Warmup and each ramp runs to the end of
	// the trace. Default 2.
	RampKeys int
	// RampStep is the per-epoch growth of each ramp flow, chosen below
	// the heavy-change threshold so only the forecast detector can see
	// it. Default 600.
	RampStep uint32
	// Seed drives the deterministic generator.
	Seed uint64
}

func (c DetectTraceConfig) withDefaults() DetectTraceConfig {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.BackgroundFlows == 0 {
		c.BackgroundFlows = 2000
	}
	if c.Warmup == 0 {
		c.Warmup = 10
	}
	if c.InjectEvery == 0 {
		c.InjectEvery = 3
	}
	if c.ChangeKeys == 0 {
		c.ChangeKeys = 3
	}
	if c.ChangeDelta == 0 {
		c.ChangeDelta = 16384
	}
	if c.SpreaderFanout == 0 {
		c.SpreaderFanout = 512
	}
	if c.VictimSources == 0 {
		c.VictimSources = 512
	}
	if c.RampKeys == 0 {
		c.RampKeys = 2
	}
	if c.RampStep == 0 {
		c.RampStep = 600
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// InjectedEpoch is one generated epoch with its ground truth.
type InjectedEpoch struct {
	// Time is the epoch's synthetic timestamp (one minute apart).
	Time time.Time
	// Records is the epoch's flow record set.
	Records []flow.Record
	// ChangedKeys are the flows whose count moved by >= ChangeDelta
	// against the previous epoch — injection onsets and the recoveries
	// one epoch later.
	ChangedKeys []flow.Key
	// Spreaders are the source addresses injected as superspreaders in
	// this epoch.
	Spreaders []uint32
	// Victims are the destination addresses injected as fan-in victims
	// in this epoch.
	Victims []uint32
	// RampKeys are the flows actively ramping as of this epoch — each
	// should raise at least one forecast alert somewhere in its window.
	RampKeys []flow.Key
}

// backgroundKey derives the i-th background flow's key: every flow has
// its own source address, so the background contributes no fanout, and
// 251 shared destinations keep every per-destination run far below any
// fan-in threshold.
func backgroundKey(i int) flow.Key {
	return flow.Key{
		SrcIP:   0x0A000000 | uint32(i),
		DstIP:   0xC0A80000 | uint32(i%251),
		SrcPort: uint16(1024 + i%40000),
		DstPort: uint16([...]uint16{80, 443, 53, 8080}[i%4]),
		Proto:   uint8([...]uint8{6, 6, 17, 6}[i%4]),
	}
}

// rampKey derives the j-th slow-ramp flow's key, on its own address
// space so a ramp never collides with background or injection keys.
func rampKey(j int) flow.Key {
	return flow.Key{
		SrcIP:   0xBEEF0000 | uint32(j),
		DstIP:   0xC0A90000 | uint32(j),
		SrcPort: uint16(30000 + j),
		DstPort: 443,
		Proto:   6,
	}
}

// GenDetectTrace builds the synthetic epoch sequence. Background counts
// are heavy-tailed (up to ~2000 packets) with per-epoch jitter bounded
// well below any sane change threshold, so injected deltas are the only
// heavy changes in the stream and the derived truth is exact.
func GenDetectTrace(cfg DetectTraceConfig) []InjectedEpoch {
	cfg = cfg.withDefaults()
	state := cfg.Seed

	// Stable per-flow base counts: a crude zipf-ish tail capped so the
	// jitter band (±base/8 around base) can never cross ChangeDelta
	// between two epochs.
	base := make([]uint32, cfg.BackgroundFlows)
	for i := range base {
		var r uint64
		state, r = hashing.SplitMix64(state)
		b := 16 + uint32(r%64)
		if r%97 == 0 {
			b += uint32(r>>32) % 1900
		}
		base[i] = b
	}

	counts := func(epoch int) []uint32 {
		out := make([]uint32, cfg.BackgroundFlows)
		s := cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(epoch+1))
		for i, b := range base {
			var r uint64
			s, r = hashing.SplitMix64(s)
			jitter := uint32(r) % (b/4 + 1) // in [0, b/4]
			out[i] = b - b/8 + jitter       // base ± base/8
		}
		return out
	}

	injectionAt := func(epoch int) (int, bool) {
		if epoch < cfg.Warmup || (epoch-cfg.Warmup)%cfg.InjectEvery != 0 {
			return 0, false
		}
		return (epoch - cfg.Warmup) / cfg.InjectEvery, true
	}
	changeTargets := func(n int) []int {
		out := make([]int, cfg.ChangeKeys)
		for j := range out {
			out[j] = (n*cfg.ChangeKeys + j) % cfg.BackgroundFlows
		}
		return out
	}

	epochs := make([]InjectedEpoch, cfg.Epochs)
	for e := range epochs {
		ep := &epochs[e]
		ep.Time = time.Unix(1_700_000_000+int64(e)*60, 0).UTC()
		cs := counts(e)
		if n, ok := injectionAt(e); ok {
			// Heavy-change injection: spike a rotating set of background
			// flows this epoch; they fall back next epoch (the recovery).
			for _, i := range changeTargets(n) {
				cs[i] += cfg.ChangeDelta
				ep.ChangedKeys = append(ep.ChangedKeys, backgroundKey(i))
			}
			// Superspreader injection: a fresh source fanning out to
			// SpreaderFanout distinct destinations with mouse flows.
			src := 0xDEAD0000 | uint32(n)
			ep.Spreaders = append(ep.Spreaders, src)
			for d := 0; d < cfg.SpreaderFanout; d++ {
				ep.Records = append(ep.Records, flow.Record{
					Key: flow.Key{
						SrcIP: src, DstIP: 0xE0000000 | uint32(d),
						SrcPort: 40000, DstPort: 80, Proto: 6,
					},
					Count: 1 + uint32(d%3),
				})
			}
			// Victim fan-in injection: VictimSources fresh sources, each a
			// mouse flow, converging on one fresh destination.
			dst := 0xF00D0000 | uint32(n)
			ep.Victims = append(ep.Victims, dst)
			for s := 0; s < cfg.VictimSources; s++ {
				ep.Records = append(ep.Records, flow.Record{
					Key: flow.Key{
						SrcIP: 0xCAFE0000 | uint32(n*cfg.VictimSources+s), DstIP: dst,
						SrcPort: 50000, DstPort: 443, Proto: 6,
					},
					Count: 1 + uint32(s%2),
				})
			}
		}
		// Slow ramps: each ramp flow idles at a stable base until its
		// staggered start, then grows by RampStep every epoch to the end
		// of the trace — per-epoch deltas the heavy-change threshold
		// never sees, truth for the forecast detector from the first
		// elevated epoch onwards.
		for j := 0; j < cfg.RampKeys; j++ {
			start := cfg.Warmup + 2*j
			count := uint32(512)
			if e >= start {
				count += cfg.RampStep * uint32(e-start+1)
				ep.RampKeys = append(ep.RampKeys, rampKey(j))
			}
			ep.Records = append(ep.Records, flow.Record{Key: rampKey(j), Count: count})
		}
		if _, wasInjection := injectionAt(e - 1); wasInjection && e >= 1 {
			// The spiked flows recover this epoch: another heavy change.
			n, _ := injectionAt(e - 1)
			for _, i := range changeTargets(n) {
				ep.ChangedKeys = append(ep.ChangedKeys, backgroundKey(i))
			}
		}
		for i, c := range cs {
			ep.Records = append(ep.Records, flow.Record{Key: backgroundKey(i), Count: c})
		}
	}
	return epochs
}

// DetectEval aggregates a detector's scoring against the injected truth.
type DetectEval struct {
	Epochs   int
	Alerts   int
	ChangeTP int
	ChangeFP int
	ChangeFN int
	SpreadTP int
	SpreadFP int
	SpreadFN int
	FanInTP  int
	FanInFP  int
	FanInFN  int
	// ForecastTP counts forecast alerts on actively ramping keys;
	// ForecastFP those on keys neither ramping nor spiking. Forecast
	// alerts on spike-truth keys are expected (a 16k step IS a forecast
	// break) and counted separately as ForecastSpike.
	ForecastTP    int
	ForecastFP    int
	ForecastSpike int
	// RampEvents / RampsDetected score recall at the event level: a ramp
	// counts as detected when at least one forecast alert lands on its
	// key inside its window (the CUSUM fires once per accumulation, not
	// every epoch).
	RampEvents    int
	RampsDetected int
	// AnomalyEpochs counts epochs that raised at least one anomaly alert
	// (informational; anomalies have no per-key truth here).
	AnomalyEpochs int
	// NsPerEpoch is the mean evaluation cost per epoch.
	NsPerEpoch float64
}

func ratio(tp, other int) float64 {
	if tp+other == 0 {
		return 1
	}
	return float64(tp) / float64(tp+other)
}

// ChangePrecision is TP/(TP+FP) over heavy-change alerts; 1 when none
// fired.
func (e DetectEval) ChangePrecision() float64 { return ratio(e.ChangeTP, e.ChangeFP) }

// ChangeRecall is TP/(TP+FN) over injected heavy changes; 1 when none
// were injected.
func (e DetectEval) ChangeRecall() float64 { return ratio(e.ChangeTP, e.ChangeFN) }

// SpreadPrecision is TP/(TP+FP) over superspreader alerts.
func (e DetectEval) SpreadPrecision() float64 { return ratio(e.SpreadTP, e.SpreadFP) }

// SpreadRecall is TP/(TP+FN) over injected superspreaders.
func (e DetectEval) SpreadRecall() float64 { return ratio(e.SpreadTP, e.SpreadFN) }

// FanInPrecision is TP/(TP+FP) over victim fan-in alerts.
func (e DetectEval) FanInPrecision() float64 { return ratio(e.FanInTP, e.FanInFP) }

// FanInRecall is TP/(TP+FN) over injected victims.
func (e DetectEval) FanInRecall() float64 { return ratio(e.FanInTP, e.FanInFN) }

// ForecastPrecision is TP/(TP+FP) over forecast alerts, spike-break
// alerts excluded (they are correct, just not ramp truth).
func (e DetectEval) ForecastPrecision() float64 { return ratio(e.ForecastTP, e.ForecastFP) }

// RampRecall is the fraction of injected ramps that raised at least one
// forecast alert; 1 when none were injected.
func (e DetectEval) RampRecall() float64 { return ratio(e.RampsDetected, e.RampEvents-e.RampsDetected) }

// EvalDetect runs every epoch through the detector and scores the raised
// alerts against the ground truth, epoch by epoch (ramps at the event
// level).
func EvalDetect(d *detect.Detector, epochs []InjectedEpoch) DetectEval {
	eval := DetectEval{Epochs: len(epochs)}
	rampHit := map[flow.Key]bool{} // ramp key -> alerted at least once
	rampAll := map[flow.Key]bool{} // every key that ever ramps
	for _, ep := range epochs {
		for _, k := range ep.RampKeys {
			rampAll[k] = true
		}
	}
	eval.RampEvents = len(rampAll)
	var totalNs int64
	for e, ep := range epochs {
		start := time.Now()
		alerts := d.Observe(e, ep.Time, ep.Records)
		totalNs += time.Since(start).Nanoseconds()
		eval.Alerts += len(alerts)

		truthChange := map[flow.Key]bool{}
		for _, k := range ep.ChangedKeys {
			truthChange[k] = true
		}
		truthRamp := map[flow.Key]bool{}
		for _, k := range ep.RampKeys {
			truthRamp[k] = true
		}

		flaggedChange := map[flow.Key]bool{}
		flaggedSpread := map[uint32]bool{}
		flaggedFanIn := map[uint32]bool{}
		anomaly := false
		for _, a := range alerts {
			switch a.Kind {
			case detect.KindHeavyChange:
				flaggedChange[a.Key] = true
			case detect.KindSuperspreader:
				flaggedSpread[a.Key.SrcIP] = true
			case detect.KindVictimFanIn:
				flaggedFanIn[a.Key.DstIP] = true
			case detect.KindForecast:
				switch {
				case truthRamp[a.Key]:
					eval.ForecastTP++
					rampHit[a.Key] = true
				case truthChange[a.Key]:
					// A 16k spike (or its recovery) breaks the forecast
					// too; correct, but not ramp truth.
					eval.ForecastSpike++
				default:
					eval.ForecastFP++
				}
			case detect.KindAnomaly:
				anomaly = true
			}
		}
		if anomaly {
			eval.AnomalyEpochs++
		}

		for _, k := range ep.ChangedKeys {
			if flaggedChange[k] {
				eval.ChangeTP++
			} else {
				eval.ChangeFN++
			}
		}
		for k := range flaggedChange {
			if !truthChange[k] {
				eval.ChangeFP++
			}
		}
		truthSpread := map[uint32]bool{}
		for _, s := range ep.Spreaders {
			truthSpread[s] = true
			if flaggedSpread[s] {
				eval.SpreadTP++
			} else {
				eval.SpreadFN++
			}
		}
		for s := range flaggedSpread {
			if !truthSpread[s] {
				eval.SpreadFP++
			}
		}
		truthVictim := map[uint32]bool{}
		for _, v := range ep.Victims {
			truthVictim[v] = true
			if flaggedFanIn[v] {
				eval.FanInTP++
			} else {
				eval.FanInFN++
			}
		}
		for v := range flaggedFanIn {
			if !truthVictim[v] {
				eval.FanInFP++
			}
		}
	}
	eval.RampsDetected = len(rampHit)
	if len(epochs) > 0 {
		eval.NsPerEpoch = float64(totalNs) / float64(len(epochs))
	}
	return eval
}
