// Synthetic injection workload for the detection subsystem: epochs of
// stable background traffic with known heavy changes and superspreaders
// injected at a fixed cadence, plus the evaluator that scores a detector
// against the injected ground truth. Both the acceptance test and the
// flowbench detect experiment run on this, so the precision/recall
// numbers in BENCH_detect.json are reproducible from the same machinery
// the tests gate on.
package experiments

import (
	"time"

	"repro/detect"
	"repro/flow"
	"repro/internal/hashing"
)

// DetectTraceConfig parameterizes the synthetic injection workload. The
// zero value takes every default.
type DetectTraceConfig struct {
	// Epochs is the total epoch count. Default 30.
	Epochs int
	// BackgroundFlows is the persistent background population; each flow
	// keeps a stable per-epoch count with small jitter. Default 2000.
	BackgroundFlows int
	// Warmup is how many epochs run clean before the first injection,
	// letting the detector's baselines fill. Default 10.
	Warmup int
	// InjectEvery is the injection cadence after warmup. Default 3.
	InjectEvery int
	// ChangeKeys is how many background flows spike per injection.
	// Default 3.
	ChangeKeys int
	// ChangeDelta is the spike magnitude in packets — both the onset and
	// the next epoch's recovery are heavy changes of this size.
	// Default 16384.
	ChangeDelta uint32
	// SpreaderFanout is the distinct-destination count of each injected
	// superspreader source. Default 512.
	SpreaderFanout int
	// Seed drives the deterministic generator.
	Seed uint64
}

func (c DetectTraceConfig) withDefaults() DetectTraceConfig {
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.BackgroundFlows == 0 {
		c.BackgroundFlows = 2000
	}
	if c.Warmup == 0 {
		c.Warmup = 10
	}
	if c.InjectEvery == 0 {
		c.InjectEvery = 3
	}
	if c.ChangeKeys == 0 {
		c.ChangeKeys = 3
	}
	if c.ChangeDelta == 0 {
		c.ChangeDelta = 16384
	}
	if c.SpreaderFanout == 0 {
		c.SpreaderFanout = 512
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// InjectedEpoch is one generated epoch with its ground truth.
type InjectedEpoch struct {
	// Time is the epoch's synthetic timestamp (one minute apart).
	Time time.Time
	// Records is the epoch's flow record set.
	Records []flow.Record
	// ChangedKeys are the flows whose count moved by >= ChangeDelta
	// against the previous epoch — injection onsets and the recoveries
	// one epoch later.
	ChangedKeys []flow.Key
	// Spreaders are the source addresses injected as superspreaders in
	// this epoch.
	Spreaders []uint32
}

// backgroundKey derives the i-th background flow's key: every flow has
// its own source address, so the background contributes no fanout.
func backgroundKey(i int) flow.Key {
	return flow.Key{
		SrcIP:   0x0A000000 | uint32(i),
		DstIP:   0xC0A80000 | uint32(i%251),
		SrcPort: uint16(1024 + i%40000),
		DstPort: uint16([...]uint16{80, 443, 53, 8080}[i%4]),
		Proto:   uint8([...]uint8{6, 6, 17, 6}[i%4]),
	}
}

// GenDetectTrace builds the synthetic epoch sequence. Background counts
// are heavy-tailed (up to ~2000 packets) with per-epoch jitter bounded
// well below any sane change threshold, so injected deltas are the only
// heavy changes in the stream and the derived truth is exact.
func GenDetectTrace(cfg DetectTraceConfig) []InjectedEpoch {
	cfg = cfg.withDefaults()
	state := cfg.Seed

	// Stable per-flow base counts: a crude zipf-ish tail capped so the
	// jitter band (±base/8 around base) can never cross ChangeDelta
	// between two epochs.
	base := make([]uint32, cfg.BackgroundFlows)
	for i := range base {
		var r uint64
		state, r = hashing.SplitMix64(state)
		b := 16 + uint32(r%64)
		if r%97 == 0 {
			b += uint32(r>>32) % 1900
		}
		base[i] = b
	}

	counts := func(epoch int) []uint32 {
		out := make([]uint32, cfg.BackgroundFlows)
		s := cfg.Seed ^ (0x9E3779B97F4A7C15 * uint64(epoch+1))
		for i, b := range base {
			var r uint64
			s, r = hashing.SplitMix64(s)
			jitter := uint32(r) % (b/4 + 1) // in [0, b/4]
			out[i] = b - b/8 + jitter       // base ± base/8
		}
		return out
	}

	injectionAt := func(epoch int) (int, bool) {
		if epoch < cfg.Warmup || (epoch-cfg.Warmup)%cfg.InjectEvery != 0 {
			return 0, false
		}
		return (epoch - cfg.Warmup) / cfg.InjectEvery, true
	}
	changeTargets := func(n int) []int {
		out := make([]int, cfg.ChangeKeys)
		for j := range out {
			out[j] = (n*cfg.ChangeKeys + j) % cfg.BackgroundFlows
		}
		return out
	}

	epochs := make([]InjectedEpoch, cfg.Epochs)
	for e := range epochs {
		ep := &epochs[e]
		ep.Time = time.Unix(1_700_000_000+int64(e)*60, 0).UTC()
		cs := counts(e)
		if n, ok := injectionAt(e); ok {
			// Heavy-change injection: spike a rotating set of background
			// flows this epoch; they fall back next epoch (the recovery).
			for _, i := range changeTargets(n) {
				cs[i] += cfg.ChangeDelta
				ep.ChangedKeys = append(ep.ChangedKeys, backgroundKey(i))
			}
			// Superspreader injection: a fresh source fanning out to
			// SpreaderFanout distinct destinations with mouse flows.
			src := 0xDEAD0000 | uint32(n)
			ep.Spreaders = append(ep.Spreaders, src)
			for d := 0; d < cfg.SpreaderFanout; d++ {
				ep.Records = append(ep.Records, flow.Record{
					Key: flow.Key{
						SrcIP: src, DstIP: 0xE0000000 | uint32(d),
						SrcPort: 40000, DstPort: 80, Proto: 6,
					},
					Count: 1 + uint32(d%3),
				})
			}
		}
		if _, wasInjection := injectionAt(e - 1); wasInjection && e >= 1 {
			// The spiked flows recover this epoch: another heavy change.
			n, _ := injectionAt(e - 1)
			for _, i := range changeTargets(n) {
				ep.ChangedKeys = append(ep.ChangedKeys, backgroundKey(i))
			}
		}
		for i, c := range cs {
			ep.Records = append(ep.Records, flow.Record{Key: backgroundKey(i), Count: c})
		}
	}
	return epochs
}

// DetectEval aggregates a detector's scoring against the injected truth.
type DetectEval struct {
	Epochs   int
	Alerts   int
	ChangeTP int
	ChangeFP int
	ChangeFN int
	SpreadTP int
	SpreadFP int
	SpreadFN int
	// AnomalyEpochs counts epochs that raised at least one anomaly alert
	// (informational; anomalies have no per-key truth here).
	AnomalyEpochs int
	// NsPerEpoch is the mean evaluation cost per epoch.
	NsPerEpoch float64
}

func ratio(tp, other int) float64 {
	if tp+other == 0 {
		return 1
	}
	return float64(tp) / float64(tp+other)
}

// ChangePrecision is TP/(TP+FP) over heavy-change alerts; 1 when none
// fired.
func (e DetectEval) ChangePrecision() float64 { return ratio(e.ChangeTP, e.ChangeFP) }

// ChangeRecall is TP/(TP+FN) over injected heavy changes; 1 when none
// were injected.
func (e DetectEval) ChangeRecall() float64 { return ratio(e.ChangeTP, e.ChangeFN) }

// SpreadPrecision is TP/(TP+FP) over superspreader alerts.
func (e DetectEval) SpreadPrecision() float64 { return ratio(e.SpreadTP, e.SpreadFP) }

// SpreadRecall is TP/(TP+FN) over injected superspreaders.
func (e DetectEval) SpreadRecall() float64 { return ratio(e.SpreadTP, e.SpreadFN) }

// EvalDetect runs every epoch through the detector and scores the raised
// alerts against the ground truth, epoch by epoch.
func EvalDetect(d *detect.Detector, epochs []InjectedEpoch) DetectEval {
	eval := DetectEval{Epochs: len(epochs)}
	var totalNs int64
	for e, ep := range epochs {
		start := time.Now()
		alerts := d.Observe(e, ep.Time, ep.Records)
		totalNs += time.Since(start).Nanoseconds()
		eval.Alerts += len(alerts)

		flaggedChange := map[flow.Key]bool{}
		flaggedSpread := map[uint32]bool{}
		anomaly := false
		for _, a := range alerts {
			switch a.Kind {
			case detect.KindHeavyChange:
				flaggedChange[a.Key] = true
			case detect.KindSuperspreader:
				flaggedSpread[a.Key.SrcIP] = true
			case detect.KindAnomaly:
				anomaly = true
			}
		}
		if anomaly {
			eval.AnomalyEpochs++
		}

		truthChange := map[flow.Key]bool{}
		for _, k := range ep.ChangedKeys {
			truthChange[k] = true
			if flaggedChange[k] {
				eval.ChangeTP++
			} else {
				eval.ChangeFN++
			}
		}
		for k := range flaggedChange {
			if !truthChange[k] {
				eval.ChangeFP++
			}
		}
		truthSpread := map[uint32]bool{}
		for _, s := range ep.Spreaders {
			truthSpread[s] = true
			if flaggedSpread[s] {
				eval.SpreadTP++
			} else {
				eval.SpreadFN++
			}
		}
		for s := range flaggedSpread {
			if !truthSpread[s] {
				eval.SpreadFP++
			}
		}
	}
	if len(epochs) > 0 {
		eval.NsPerEpoch = float64(totalNs) / float64(len(epochs))
	}
	return eval
}
