// Multi-vantage synthetic workload for the cross-vantage correlator:
// background traffic split across several vantage points with two kinds
// of coordinated injection — keys spiking past the local alert threshold
// at a quorum of vantages, and keys spiking below every local threshold
// but past the netwide line once merged — plus the evaluator that wires
// per-vantage detectors into a Correlator and scores its promotions
// against the injected truth. The acceptance test, the flowbench detect
// experiment and the CI detection-quality gate all run on this.
package experiments

import (
	"fmt"
	"time"

	"repro/detect"
	"repro/flow"
	"repro/internal/hashing"
)

// NetwideTraceConfig parameterizes the multi-vantage workload. The zero
// value takes every default.
type NetwideTraceConfig struct {
	// Vantages is how many vantage points observe the traffic. Default 3.
	Vantages int
	// Epochs is the total epoch count. Default 30.
	Epochs int
	// BackgroundFlows is the persistent background population, split
	// across the vantages. Default 1500.
	BackgroundFlows int
	// Warmup is how many epochs run clean before the first injection.
	// Default 8.
	Warmup int
	// InjectEvery is the injection cadence after warmup. Default 3.
	InjectEvery int
	// CoordKeys is how many keys spike past the local alert threshold at
	// a quorum of vantages per injection. Default 2.
	CoordKeys int
	// CoordDelta is the per-vantage spike of a coordinated key, at or
	// past VantageMinDelta. Default 2048.
	CoordDelta uint32
	// ThinKeys is how many keys spike below every local threshold but
	// past the netwide line once merged. Default 2.
	ThinKeys int
	// ThinDelta is the per-vantage spike of a thin-spread key, below
	// VantageMinDelta. Default 900.
	ThinDelta uint32
	// VantageMinDelta is the local alert threshold the vantage detectors
	// run with. Default 1024.
	VantageMinDelta uint32
	// NetwideMinDelta is the merged-delta promotion threshold. Default
	// 2048.
	NetwideMinDelta uint32
	// Seed drives the deterministic generator.
	Seed uint64
}

func (c NetwideTraceConfig) withDefaults() NetwideTraceConfig {
	if c.Vantages == 0 {
		c.Vantages = 3
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.BackgroundFlows == 0 {
		c.BackgroundFlows = 1500
	}
	if c.Warmup == 0 {
		c.Warmup = 8
	}
	if c.InjectEvery == 0 {
		c.InjectEvery = 3
	}
	if c.CoordKeys == 0 {
		c.CoordKeys = 2
	}
	if c.CoordDelta == 0 {
		c.CoordDelta = 2048
	}
	if c.ThinKeys == 0 {
		c.ThinKeys = 2
	}
	if c.ThinDelta == 0 {
		c.ThinDelta = 900
	}
	if c.VantageMinDelta == 0 {
		c.VantageMinDelta = 1024
	}
	if c.NetwideMinDelta == 0 {
		c.NetwideMinDelta = 2048
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NetwideEpoch is one generated epoch with per-vantage views and the
// network-wide ground truth.
type NetwideEpoch struct {
	// Time is the epoch's synthetic timestamp.
	Time time.Time
	// Views holds each vantage point's record set.
	Views [][]flow.Record
	// NetwideKeys are the keys the correlator should promote in this
	// epoch — injection onsets and the recoveries one epoch later.
	NetwideKeys []flow.Key
}

// coordKey / thinKey derive injection keys on their own address spaces.
func coordKey(i int) flow.Key {
	return flow.Key{SrcIP: 0xDD000000 | uint32(i), DstIP: 0xC0A80001, DstPort: 443, Proto: 6}
}

func thinKey(i int) flow.Key {
	return flow.Key{SrcIP: 0xEE000000 | uint32(i), DstIP: 0xC0A80002, DstPort: 443, Proto: 6}
}

// GenNetwideTrace builds the multi-vantage epoch sequence. Background
// flows split roughly evenly across vantages with bounded jitter, so
// neither their per-vantage deltas (which may enter summaries) nor
// their merged deltas can cross the promotion thresholds; injected keys
// are the only netwide truth.
func GenNetwideTrace(cfg NetwideTraceConfig) []NetwideEpoch {
	cfg = cfg.withDefaults()
	state := cfg.Seed

	// Stable per-flow totals; per-vantage share = total/V with per-epoch
	// jitter bounded at 1/16 of the share.
	base := make([]uint32, cfg.BackgroundFlows)
	for i := range base {
		var r uint64
		state, r = hashing.SplitMix64(state)
		base[i] = 48 + uint32(r%2048)
	}

	injectionAt := func(epoch int) (int, bool) {
		if epoch < cfg.Warmup || (epoch-cfg.Warmup)%cfg.InjectEvery != 0 {
			return 0, false
		}
		return (epoch - cfg.Warmup) / cfg.InjectEvery, true
	}
	injKeys := func(n int) (coord, thin []flow.Key) {
		for j := 0; j < cfg.CoordKeys; j++ {
			coord = append(coord, coordKey(n*cfg.CoordKeys+j))
		}
		for j := 0; j < cfg.ThinKeys; j++ {
			thin = append(thin, thinKey(n*cfg.ThinKeys+j))
		}
		return coord, thin
	}

	epochs := make([]NetwideEpoch, cfg.Epochs)
	for e := range epochs {
		ep := &epochs[e]
		ep.Time = time.Unix(1_700_000_000+int64(e)*60, 0).UTC()
		ep.Views = make([][]flow.Record, cfg.Vantages)

		// Background, split per vantage with jitter.
		for i, b := range base {
			share := b/uint32(cfg.Vantages) + 1
			s := cfg.Seed ^ (0xA24BAED4963EE407 * uint64(e+1)) ^ uint64(i)<<20
			for v := 0; v < cfg.Vantages; v++ {
				var r uint64
				s, r = hashing.SplitMix64(s)
				jitter := uint32(r) % (share/16 + 1)
				ep.Views[v] = append(ep.Views[v], flow.Record{
					Key:   backgroundKey(i),
					Count: share - share/32 + jitter,
				})
			}
		}

		// Injections: a coordinated key spikes CoordDelta at the first
		// two vantages (the quorum); a thin key spikes ThinDelta at every
		// vantage. Both recover next epoch, which is truth again.
		inject := func(n int) {
			coord, thin := injKeys(n)
			for _, k := range coord {
				for v := 0; v < 2 && v < cfg.Vantages; v++ {
					ep.Views[v] = append(ep.Views[v], flow.Record{Key: k, Count: 64 + cfg.CoordDelta})
				}
			}
			for _, k := range thin {
				for v := 0; v < cfg.Vantages; v++ {
					ep.Views[v] = append(ep.Views[v], flow.Record{Key: k, Count: 64 + cfg.ThinDelta})
				}
			}
		}
		// Injected keys idle at a small base everywhere outside their
		// spike epoch, so onset and recovery are both clean deltas.
		idle := func(n int) {
			coord, thin := injKeys(n)
			for _, k := range coord {
				for v := 0; v < 2 && v < cfg.Vantages; v++ {
					ep.Views[v] = append(ep.Views[v], flow.Record{Key: k, Count: 64})
				}
			}
			for _, k := range thin {
				for v := 0; v < cfg.Vantages; v++ {
					ep.Views[v] = append(ep.Views[v], flow.Record{Key: k, Count: 64})
				}
			}
		}
		maxInj := 0
		if n, ok := injectionAt(cfg.Epochs - 1); ok {
			maxInj = n
		} else if cfg.Epochs > cfg.Warmup {
			maxInj = (cfg.Epochs - 1 - cfg.Warmup) / cfg.InjectEvery
		}
		for n := 0; n <= maxInj; n++ {
			if cur, ok := injectionAt(e); ok && cur == n {
				inject(n)
				coord, thin := injKeys(n)
				ep.NetwideKeys = append(append(ep.NetwideKeys, coord...), thin...)
				continue
			}
			idle(n)
		}
		if n, wasInjection := injectionAt(e - 1); wasInjection && e >= 1 {
			// Recovery: the spiked keys fell back this epoch.
			coord, thin := injKeys(n)
			ep.NetwideKeys = append(append(ep.NetwideKeys, coord...), thin...)
		}
	}
	return epochs
}

// NetwideEval aggregates the correlator's scoring against the injected
// truth.
type NetwideEval struct {
	Epochs  int
	Alerts  int
	TP      int
	FP      int
	FN      int
	Late    uint64
	NsPerEp float64
}

// Precision is TP/(TP+FP) over promoted keys; 1 when none promoted.
func (e NetwideEval) Precision() float64 { return ratio(e.TP, e.FP) }

// Recall is TP/(TP+FN) over injected netwide keys; 1 when none injected.
func (e NetwideEval) Recall() float64 { return ratio(e.TP, e.FN) }

// EvalNetwide builds one detector per vantage (StageChange, with
// sub-threshold summaries) wired into a Correlator, drives every epoch
// through all of them, and scores the promoted keys against the ground
// truth epoch by epoch.
func EvalNetwide(cfg NetwideTraceConfig, epochs []NetwideEpoch) (NetwideEval, error) {
	cfg = cfg.withDefaults()
	names := make([]string, cfg.Vantages)
	for v := range names {
		names[v] = fmt.Sprintf("v%d", v)
	}
	corr, err := detect.NewCorrelator(detect.CorrelatorConfig{
		Vantages:        names,
		Quorum:          2,
		VantageMinDelta: cfg.VantageMinDelta,
		NetwideMinDelta: cfg.NetwideMinDelta,
	})
	if err != nil {
		return NetwideEval{}, err
	}
	var promoted []detect.NetwideAlert
	corr.SetSink(func(as []detect.NetwideAlert) { promoted = append(promoted, as...) })

	dets := make([]*detect.Detector, cfg.Vantages)
	for v := range dets {
		d, err := detect.NewDetector(detect.Config{
			Stages:          detect.StageChange,
			ChangeMinDelta:  cfg.VantageMinDelta,
			SummaryMinDelta: cfg.VantageMinDelta / 4,
		})
		if err != nil {
			return NetwideEval{}, err
		}
		name := names[v]
		d.SetSummarySink(func(s detect.ChangeSummary) { corr.ObserveSummary(name, s) })
		dets[v] = d
	}

	eval := NetwideEval{Epochs: len(epochs)}
	var totalNs int64
	for e, ep := range epochs {
		promoted = promoted[:0]
		start := time.Now()
		for v, d := range dets {
			d.Observe(e, ep.Time, ep.Views[v])
		}
		totalNs += time.Since(start).Nanoseconds()
		eval.Alerts += len(promoted)

		flagged := map[flow.Key]bool{}
		for _, a := range promoted {
			if a.Epoch != e {
				return eval, fmt.Errorf("promotion for epoch %d emitted during epoch %d", a.Epoch, e)
			}
			flagged[a.Key] = true
		}
		truth := map[flow.Key]bool{}
		for _, k := range ep.NetwideKeys {
			truth[k] = true
			if flagged[k] {
				eval.TP++
			} else {
				eval.FN++
			}
		}
		for k := range flagged {
			if !truth[k] {
				eval.FP++
			}
		}
	}
	eval.Late = corr.Late()
	if len(epochs) > 0 {
		eval.NsPerEp = float64(totalNs) / float64(len(epochs))
	}
	return eval, nil
}
