package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/trace"
)

func TestWriteTSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a\tb\n1\t2\n3\t4\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

func TestWriteTSVNoHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTSV(&buf, nil, [][]string{{"x"}}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "x\n" {
		t.Errorf("got %q", buf.String())
	}
}

func TestTable1Rows(t *testing.T) {
	header, rows, err := Table1Rows(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 6 || len(rows) != 4 {
		t.Fatalf("header %d cols, %d rows", len(header), len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r[0]] = true
	}
	for _, p := range trace.Profiles() {
		if !names[p.Name] {
			t.Errorf("missing trace %s", p.Name)
		}
	}
}

func TestFig2MultiHashShape(t *testing.T) {
	pts := Fig2MultiHash(5000, []float64{1, 2}, 3, 1)
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	for _, p := range pts {
		if p.Theory < 0 || p.Theory > 1 || p.Sim < 0 || p.Sim > 1 {
			t.Errorf("utilization out of range: %+v", p)
		}
		if d := p.Theory - p.Sim; d > 0.05 || d < -0.05 {
			t.Errorf("model deviates from simulation by %.3f: %+v", d, p)
		}
	}
}

func TestFig2PipelinedShape(t *testing.T) {
	pts := Fig2Pipelined(5000, 1.0, []float64{0.6, 0.7}, 3, 1)
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	for _, p := range pts {
		if d := p.Theory - p.Sim; d > 0.05 || d < -0.05 {
			t.Errorf("model deviates from simulation by %.3f: %+v", d, p)
		}
	}
	header, rows := Fig2Rows(pts)
	if len(header) != 6 || len(rows) != len(pts) {
		t.Error("Fig2Rows shape mismatch")
	}
}

func TestFig2ImprovementRows(t *testing.T) {
	header, rows := Fig2ImprovementRows([]float64{0.7}, []float64{1.0}, 3)
	if len(header) != 3 || len(rows) != 1 {
		t.Fatal("unexpected shape")
	}
	if !strings.HasPrefix(rows[0][2], "0.0") {
		t.Errorf("improvement at alpha 0.7, load 1 = %s, want ~0.05", rows[0][2])
	}
}

func TestFig3Rows(t *testing.T) {
	_, rows, err := Fig3Rows(2000, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	perTrace := map[string]int{}
	for _, r := range rows {
		perTrace[r[0]]++
	}
	for _, p := range trace.Profiles() {
		if perTrace[p.Name] == 0 {
			t.Errorf("no CDF points for %s", p.Name)
		}
		if perTrace[p.Name] > 60 {
			t.Errorf("%s has %d points, want <= ~50 after downsampling", p.Name, perTrace[p.Name])
		}
	}
	// Last row of each trace reaches CDF 1.
	last := map[string]string{}
	for _, r := range rows {
		last[r[0]] = r[2]
	}
	for name, v := range last {
		if v != "1.0000" {
			t.Errorf("%s CDF ends at %s, want 1.0000", name, v)
		}
	}
}

func TestFig4Rows(t *testing.T) {
	header, rows, err := Fig4Rows(2000, 64<<10, []int{1, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 3 || len(rows) != 8 { // 4 traces x 2 depths
		t.Fatalf("got %d rows, want 8", len(rows))
	}
}

func TestFig5Rows(t *testing.T) {
	_, rows, err := Fig5Rows([]int{2000}, 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Fig5Variants()) {
		t.Fatalf("got %d rows, want %d", len(rows), len(Fig5Variants()))
	}
}

func TestAppPerformance(t *testing.T) {
	ms, err := AppPerformance(trace.ISP1, []int{3000}, 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d measurements, want 4", len(ms))
	}
	for _, m := range ms {
		if m.FSC < 0 || m.FSC > 1 {
			t.Errorf("%s FSC = %v", m.Algorithm, m.FSC)
		}
		if m.SizeARE < 0 {
			t.Errorf("%s ARE = %v", m.Algorithm, m.SizeARE)
		}
	}
	for _, metric := range []string{"FSC", "RE", "ARE"} {
		header, rows := AppMetricsRows(ms, metric)
		if len(header) != 4 || len(rows) != 4 {
			t.Errorf("%s rows shape mismatch", metric)
		}
	}
}

func TestHHThresholds(t *testing.T) {
	for _, p := range trace.Profiles() {
		if len(HHThresholds(p.Name)) == 0 {
			t.Errorf("no thresholds for %s", p.Name)
		}
	}
	if len(HHThresholds("unknown")) == 0 {
		t.Error("no default thresholds")
	}
}

func TestHeavyHitterSweep(t *testing.T) {
	ms, err := HeavyHitterSweep(trace.Campus, 3000, 64<<10, []uint32{10, 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 8 { // 4 algorithms x 2 thresholds
		t.Fatalf("got %d measurements, want 8", len(ms))
	}
	header, rows := HHRows(ms)
	if len(header) != 7 || len(rows) != 8 {
		t.Error("HHRows shape mismatch")
	}
	// HashFlow detects essentially all heavy hitters at light load.
	for _, m := range ms {
		if m.Algorithm == "HashFlow" && m.F1 < 0.95 {
			t.Errorf("HashFlow F1 at threshold %d = %v", m.Threshold, m.F1)
		}
	}
}

func TestFig11Rows(t *testing.T) {
	header, rows, err := Fig11Rows(2000, 64<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 6 || len(rows) != 16 { // 4 traces x 4 algorithms
		t.Fatalf("got %d rows, want 16", len(rows))
	}
}
