package experiments

import (
	"fmt"

	"repro/flowmon"
	"repro/metrics"
	"repro/model"
	"repro/switchsim"
	"repro/trace"
)

// Table1Rows regenerates Table I: per-trace flow statistics.
func Table1Rows(flows int, seed uint64) (header []string, rows [][]string, err error) {
	header = []string{"trace", "flows", "packets", "max_flow_size", "avg_flow_size", "top7.7%_pkt_share"}
	for _, p := range trace.Profiles() {
		tr, err := trace.Generate(p, flows, seed)
		if err != nil {
			return nil, nil, err
		}
		st := trace.ComputeStats(tr)
		rows = append(rows, []string{
			st.Name, fmt.Sprint(st.Flows), fmt.Sprint(st.Packets),
			fmt.Sprint(st.MaxSize), fmt.Sprintf("%.1f", st.MeanSize), f3(st.Skew),
		})
	}
	return header, rows, nil
}

// Fig2Point is one utilization measurement: model vs simulation.
type Fig2Point struct {
	Kind   string // "multihash" or "pipelined"
	Load   float64
	Alpha  float64 // 0 for multihash
	Depth  int
	Theory float64
	Sim    float64
}

// Fig2MultiHash produces Fig. 2a: multi-hash utilization for d = 1..maxDepth
// under each load, theory and simulation (n buckets).
func Fig2MultiHash(n int, loads []float64, maxDepth int, seed uint64) []Fig2Point {
	var out []Fig2Point
	for _, load := range loads {
		for d := 1; d <= maxDepth; d++ {
			out = append(out, Fig2Point{
				Kind:   "multihash",
				Load:   load,
				Depth:  d,
				Theory: model.MultiHashUtilization(load, d),
				Sim:    model.SimulateMultiHash(n, int(load*float64(n)), d, seed),
			})
		}
	}
	return out
}

// Fig2Pipelined produces Fig. 2b/2c: pipelined utilization at one load for
// each alpha and d = 1..maxDepth.
func Fig2Pipelined(n int, load float64, alphas []float64, maxDepth int, seed uint64) []Fig2Point {
	var out []Fig2Point
	for _, alpha := range alphas {
		for d := 1; d <= maxDepth; d++ {
			out = append(out, Fig2Point{
				Kind:   "pipelined",
				Load:   load,
				Alpha:  alpha,
				Depth:  d,
				Theory: model.PipelinedUtilization(load, alpha, d),
				Sim:    model.SimulatePipelined(n, int(load*float64(n)), d, alpha, seed),
			})
		}
	}
	return out
}

// Fig2Rows renders Fig2 points.
func Fig2Rows(pts []Fig2Point) (header []string, rows [][]string) {
	header = []string{"kind", "m/n", "alpha", "depth", "theory", "simulation"}
	for _, p := range pts {
		rows = append(rows, []string{
			p.Kind, fmt.Sprint(p.Load), fmt.Sprint(p.Alpha), fmt.Sprint(p.Depth),
			f4(p.Theory), f4(p.Sim),
		})
	}
	return header, rows
}

// Fig2ImprovementRows produces Fig. 2d: utilization improvement of pipelined
// tables over multi-hash at depth d, per alpha and load.
func Fig2ImprovementRows(alphas, loads []float64, depth int) (header []string, rows [][]string) {
	header = []string{"alpha", "m/n", "improvement"}
	for _, a := range alphas {
		for _, l := range loads {
			rows = append(rows, []string{
				fmt.Sprint(a), fmt.Sprint(l), f4(model.PipelinedImprovement(l, a, depth)),
			})
		}
	}
	return header, rows
}

// Fig3Rows regenerates Fig. 3: the flow-size CDF of each trace, downsampled
// to at most maxPoints points per trace.
func Fig3Rows(flows int, seed uint64, maxPoints int) (header []string, rows [][]string, err error) {
	header = []string{"trace", "flow_size", "cdf"}
	for _, p := range trace.Profiles() {
		tr, err := trace.Generate(p, flows, seed)
		if err != nil {
			return nil, nil, err
		}
		cdf := trace.SizeCDF(tr)
		stride := 1
		if maxPoints > 0 && len(cdf) > maxPoints {
			stride = (len(cdf) + maxPoints - 1) / maxPoints
		}
		for i := 0; i < len(cdf); i += stride {
			rows = append(rows, []string{p.Name, fmt.Sprint(cdf[i].Size), f4(cdf[i].CumFrac)})
		}
		if len(cdf) > 0 && (len(cdf)-1)%stride != 0 {
			last := cdf[len(cdf)-1]
			rows = append(rows, []string{p.Name, fmt.Sprint(last.Size), f4(last.CumFrac)})
		}
	}
	return header, rows, nil
}

// Fig4Rows regenerates Fig. 4: size-estimation ARE per trace as the main
// table depth varies, at a fixed flow count.
func Fig4Rows(flows, memory int, depths []int, seed uint64) (header []string, rows [][]string, err error) {
	header = []string{"trace", "depth", "ARE"}
	for _, p := range trace.Profiles() {
		pkts, truth, err := genTrace(p, flows, seed)
		if err != nil {
			return nil, nil, err
		}
		for _, d := range depths {
			rec, err := runRecorder(flowmon.AlgorithmHashFlow,
				flowmon.Config{MemoryBytes: memory, Seed: seed, Depth: d}, pkts)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, []string{p.Name, fmt.Sprint(d), f4(metrics.SizeARE(rec.EstimateSize, truth))})
		}
	}
	return header, rows, nil
}

// Fig5Variant identifies one main-table organization of Fig. 5.
type Fig5Variant struct {
	Name      string
	Multihash bool
	Alpha     float64
}

// Fig5Variants returns the paper's four variants: multi-hash and pipelined
// with alpha 0.6 / 0.7 / 0.8.
func Fig5Variants() []Fig5Variant {
	return []Fig5Variant{
		{Name: "Multi-hash", Multihash: true},
		{Name: "alpha=0.6", Alpha: 0.6},
		{Name: "alpha=0.7", Alpha: 0.7},
		{Name: "alpha=0.8", Alpha: 0.8},
	}
}

// Fig5Rows regenerates Fig. 5: FSC and ARE on the Campus trace for each
// main-table organization across flow counts.
func Fig5Rows(flowCounts []int, memory int, seed uint64) (header []string, rows [][]string, err error) {
	header = []string{"variant", "flows", "FSC", "ARE"}
	for _, n := range flowCounts {
		pkts, truth, err := genTrace(trace.Campus, n, seed)
		if err != nil {
			return nil, nil, err
		}
		for _, v := range Fig5Variants() {
			rec, err := runRecorder(flowmon.AlgorithmHashFlow, flowmon.Config{
				MemoryBytes: memory, Seed: seed, Multihash: v.Multihash, Alpha: v.Alpha,
			}, pkts)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, []string{
				v.Name, fmt.Sprint(n),
				f4(metrics.FSC(rec.Records(), truth)),
				f4(metrics.SizeARE(rec.EstimateSize, truth)),
			})
		}
	}
	return header, rows, nil
}

// HHThresholds returns the per-trace threshold sweeps of Figs. 9 and 10.
func HHThresholds(name string) []uint32 {
	switch name {
	case "CAIDA":
		return []uint32{100, 200, 300, 400, 500, 600, 700, 800}
	case "Campus":
		return []uint32{10, 25, 50, 75, 100}
	case "ISP1":
		return []uint32{25, 50, 100, 150, 200}
	case "ISP2":
		return []uint32{1, 2, 3, 4, 5}
	default:
		return []uint32{50, 100, 200}
	}
}

// HHMetrics is one heavy-hitter measurement (Figs. 9 and 10).
type HHMetrics struct {
	Trace     string
	Algorithm string
	Threshold uint32
	F1        float64
	SizeARE   float64
	Precision float64
	Recall    float64
}

// HeavyHitterSweep regenerates Figs. 9 and 10 for one trace: F1 score and
// size-estimation ARE of detected heavy hitters across thresholds.
func HeavyHitterSweep(p trace.Profile, flows, memory int, thresholds []uint32, seed uint64) ([]HHMetrics, error) {
	pkts, truth, err := genTrace(p, flows, seed)
	if err != nil {
		return nil, err
	}
	var out []HHMetrics
	for _, a := range flowmon.All() {
		rec, err := runRecorder(a, flowmon.Config{MemoryBytes: memory, Seed: seed}, pkts)
		if err != nil {
			return nil, err
		}
		recs := rec.Records()
		for _, th := range thresholds {
			rep := metrics.HeavyHitters(recs, truth, th)
			out = append(out, HHMetrics{
				Trace:     p.Name,
				Algorithm: a.String(),
				Threshold: th,
				F1:        rep.F1,
				SizeARE:   rep.SizeARE,
				Precision: rep.Precision,
				Recall:    rep.Recall,
			})
		}
	}
	return out, nil
}

// HHRows renders heavy-hitter metrics.
func HHRows(ms []HHMetrics) (header []string, rows [][]string) {
	header = []string{"trace", "algorithm", "threshold", "F1", "ARE", "precision", "recall"}
	for _, m := range ms {
		rows = append(rows, []string{
			m.Trace, m.Algorithm, fmt.Sprint(m.Threshold),
			f4(m.F1), f4(m.SizeARE), f4(m.Precision), f4(m.Recall),
		})
	}
	return header, rows
}

// ExtrasRows compares the beyond-paper comparators (sampled NetFlow at
// rates 100 and 1000, bucketized cuckoo) against HashFlow on the Fig. 6/8
// metrics plus per-packet cost, for each trace profile.
func ExtrasRows(flows, memory int, seed uint64) (header []string, rows [][]string, err error) {
	header = []string{"trace", "algorithm", "FSC", "ARE", "RE", "hashes_per_pkt", "mem_access_per_pkt"}
	type variant struct {
		name string
		alg  flowmon.Algorithm
		cfg  flowmon.Config
	}
	base := flowmon.Config{MemoryBytes: memory, Seed: seed}
	variants := []variant{
		{"HashFlow", flowmon.AlgorithmHashFlow, base},
		{"SampledNetFlow(1:100)", flowmon.AlgorithmSampledNetFlow, withRate(base, 100)},
		{"SampledNetFlow(1:1000)", flowmon.AlgorithmSampledNetFlow, withRate(base, 1000)},
		{"Cuckoo", flowmon.AlgorithmCuckoo, base},
		{"SpaceSaving", flowmon.AlgorithmSpaceSaving, base},
	}
	for _, p := range trace.Profiles() {
		pkts, truth, err := genTrace(p, flows, seed)
		if err != nil {
			return nil, nil, err
		}
		for _, v := range variants {
			rec, err := runRecorder(v.alg, v.cfg, pkts)
			if err != nil {
				return nil, nil, err
			}
			ops := rec.OpStats()
			rows = append(rows, []string{
				p.Name, v.name,
				f4(metrics.FSC(rec.Records(), truth)),
				f4(metrics.SizeARE(rec.EstimateSize, truth)),
				f4(metrics.CardinalityRE(rec.EstimateCardinality(), truth)),
				fmt.Sprintf("%.2f", ops.HashesPerPacket()),
				fmt.Sprintf("%.2f", ops.MemAccessesPerPacket()),
			})
		}
	}
	return header, rows, nil
}

func withRate(cfg flowmon.Config, rate int) flowmon.Config {
	cfg.SampleRate = rate
	return cfg
}

// Fig11Row is one throughput/cost measurement (Fig. 11a-c).
type Fig11Row struct {
	Trace        string
	Algorithm    string
	ModeledKpps  float64
	MeasuredMpps float64
	HashesPerPkt float64
	MemPerPkt    float64
}

// Fig11Rows regenerates Fig. 11: modeled bmv2-anchored throughput, real Go
// throughput, and per-packet hash / memory-access counts per trace.
func Fig11Rows(flows, memory int, seed uint64) (header []string, rows [][]string, err error) {
	header = []string{"trace", "algorithm", "modeled_Kpps", "measured_Mpps", "hashes_per_pkt", "mem_access_per_pkt"}
	cost := switchsim.DefaultCostModel()
	for _, p := range trace.Profiles() {
		tr, err := trace.Generate(p, flows, seed)
		if err != nil {
			return nil, nil, err
		}
		pkts := tr.Packets(seed)
		for _, a := range flowmon.All() {
			rec, err := flowmon.New(a, flowmon.Config{MemoryBytes: memory, Seed: seed})
			if err != nil {
				return nil, nil, err
			}
			res, err := switchsim.Run(rec, pkts, cost)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, []string{
				p.Name, a.String(),
				fmt.Sprintf("%.2f", res.ModeledKpps),
				fmt.Sprintf("%.2f", res.MeasuredMpps),
				fmt.Sprintf("%.2f", res.Ops.HashesPerPacket()),
				fmt.Sprintf("%.2f", res.Ops.MemAccessesPerPacket()),
			})
		}
	}
	return header, rows, nil
}
