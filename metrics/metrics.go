// Package metrics implements the four performance metrics of the paper's
// evaluation (§IV-A): Flow Set Coverage for flow record report, Average
// Relative Error for flow size estimation, Relative Error for cardinality
// estimation, and the F1 score (with size ARE) for heavy hitter detection.
package metrics

import (
	"math"
	"sort"

	"repro/flow"
)

// FSC computes Flow Set Coverage: the number of reported records whose flow
// ID is a real observed flow, divided by the number of true flows.
// Duplicate reports of the same key count once.
func FSC(reported []flow.Record, truth *flow.Truth) float64 {
	if truth.Flows() == 0 {
		return 0
	}
	seen := make(map[flow.Key]struct{}, len(reported))
	correct := 0
	for _, r := range reported {
		if _, dup := seen[r.Key]; dup {
			continue
		}
		seen[r.Key] = struct{}{}
		if truth.Contains(r.Key) {
			correct++
		}
	}
	return float64(correct) / float64(truth.Flows())
}

// SizeARE computes the Average Relative Error of flow size estimation over
// every true flow: mean |est/true − 1|. A flow the estimator knows nothing
// about (estimate 0) contributes an error of 1, per the paper's convention.
func SizeARE(estimate func(flow.Key) uint32, truth *flow.Truth) float64 {
	if truth.Flows() == 0 {
		return 0
	}
	var sum float64
	for _, rec := range truth.Records() {
		est := float64(estimate(rec.Key))
		real := float64(rec.Count)
		sum += math.Abs(est/real - 1)
	}
	return sum / float64(truth.Flows())
}

// CardinalityRE computes |estimated/true − 1|.
func CardinalityRE(estimated float64, truth *flow.Truth) float64 {
	n := truth.Flows()
	if n == 0 {
		return 0
	}
	return math.Abs(estimated/float64(n) - 1)
}

// TopKAccuracy returns the fraction of the true top-k flows (by exact
// count) that appear among the reported top-k (by reported count) — a
// ranking-quality metric complementary to the threshold-based heavy hitter
// score.
func TopKAccuracy(reported []flow.Record, truth *flow.Truth, k int) float64 {
	if k <= 0 || truth.Flows() == 0 {
		return 0
	}
	real := truth.TopK(k)
	realSet := make(map[flow.Key]struct{}, len(real))
	for _, r := range real {
		realSet[r.Key] = struct{}{}
	}

	// Dedupe reported keys keeping the largest claim, then rank.
	best := make(map[flow.Key]uint32, len(reported))
	for _, r := range reported {
		if c, ok := best[r.Key]; !ok || r.Count > c {
			best[r.Key] = r.Count
		}
	}
	ranked := make([]flow.Record, 0, len(best))
	for key, c := range best {
		ranked = append(ranked, flow.Record{Key: key, Count: c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		wa, wb := ranked[i].Key.Words()
		wc, wd := ranked[j].Key.Words()
		if wa != wc {
			return wa < wc
		}
		return wb < wd
	})
	if k < len(ranked) {
		ranked = ranked[:k]
	}
	hit := 0
	for _, r := range ranked {
		if _, ok := realSet[r.Key]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(real))
}

// HHReport scores heavy hitter detection.
type HHReport struct {
	// Reported is the number of heavy hitters the algorithm claimed.
	Reported int
	// Real is the number of true heavy hitters.
	Real int
	// Correct is the number of claimed heavy hitters that are real.
	Correct int
	// Precision is Correct/Reported, Recall is Correct/Real.
	Precision float64
	Recall    float64
	// F1 is the harmonic mean of precision and recall.
	F1 float64
	// SizeARE is the average relative size-estimation error over the
	// correctly detected heavy hitters.
	SizeARE float64
}

// HeavyHitters scores a reported record set against the ground truth at the
// given threshold. A flow is a true heavy hitter when its exact count is at
// least threshold; it is claimed when its reported count is at least
// threshold.
func HeavyHitters(reported []flow.Record, truth *flow.Truth, threshold uint32) HHReport {
	var rep HHReport

	claimed := make(map[flow.Key]uint32, len(reported))
	for _, r := range reported {
		if r.Count >= threshold {
			// Keep the largest claim if a key is reported twice.
			if c, ok := claimed[r.Key]; !ok || r.Count > c {
				claimed[r.Key] = r.Count
			}
		}
	}
	rep.Reported = len(claimed)

	var areSum float64
	for k, est := range claimed {
		real := truth.Count(k)
		if real >= threshold {
			rep.Correct++
			areSum += math.Abs(float64(est)/float64(real) - 1)
		}
	}
	rep.Real = len(truth.HeavyHitters(threshold))

	if rep.Reported > 0 {
		rep.Precision = float64(rep.Correct) / float64(rep.Reported)
	}
	if rep.Real > 0 {
		rep.Recall = float64(rep.Correct) / float64(rep.Real)
	}
	if rep.Precision+rep.Recall > 0 {
		rep.F1 = 2 * rep.Precision * rep.Recall / (rep.Precision + rep.Recall)
	}
	if rep.Correct > 0 {
		rep.SizeARE = areSum / float64(rep.Correct)
	}
	return rep
}
