package metrics

import (
	"math"
	"testing"

	"repro/flow"
)

func buildTruth(counts map[flow.Key]uint32) *flow.Truth {
	t := flow.NewTruth(len(counts))
	for k, c := range counts {
		for i := uint32(0); i < c; i++ {
			t.Observe(flow.Packet{Key: k})
		}
	}
	return t
}

var (
	k1 = flow.Key{SrcIP: 1}
	k2 = flow.Key{SrcIP: 2}
	k3 = flow.Key{SrcIP: 3}
	k4 = flow.Key{SrcIP: 4}
)

func TestFSC(t *testing.T) {
	truth := buildTruth(map[flow.Key]uint32{k1: 5, k2: 3, k3: 1, k4: 1})
	tests := []struct {
		name     string
		reported []flow.Record
		want     float64
	}{
		{"all correct", []flow.Record{{Key: k1}, {Key: k2}, {Key: k3}, {Key: k4}}, 1.0},
		{"half", []flow.Record{{Key: k1}, {Key: k2}}, 0.5},
		{"bogus keys ignored", []flow.Record{{Key: k1}, {Key: flow.Key{SrcIP: 99}}}, 0.25},
		{"duplicates count once", []flow.Record{{Key: k1}, {Key: k1}, {Key: k1}}, 0.25},
		{"empty", nil, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := FSC(tc.reported, truth); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("FSC = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestFSCEmptyTruth(t *testing.T) {
	if got := FSC([]flow.Record{{Key: k1}}, flow.NewTruth(0)); got != 0 {
		t.Errorf("FSC with empty truth = %v, want 0", got)
	}
}

func TestSizeARE(t *testing.T) {
	truth := buildTruth(map[flow.Key]uint32{k1: 10, k2: 4})
	tests := []struct {
		name string
		est  map[flow.Key]uint32
		want float64
	}{
		{"exact", map[flow.Key]uint32{k1: 10, k2: 4}, 0},
		{"unknown counts as 1", map[flow.Key]uint32{k1: 10}, 0.5},
		{"20% high on one", map[flow.Key]uint32{k1: 12, k2: 4}, 0.1},
		{"50% low on one", map[flow.Key]uint32{k1: 5, k2: 4}, 0.25},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := SizeARE(func(k flow.Key) uint32 { return tc.est[k] }, truth)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("SizeARE = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCardinalityRE(t *testing.T) {
	truth := buildTruth(map[flow.Key]uint32{k1: 1, k2: 1, k3: 1, k4: 1})
	tests := []struct {
		est  float64
		want float64
	}{
		{4, 0},
		{5, 0.25},
		{3, 0.25},
		{0, 1},
		{8, 1},
	}
	for _, tc := range tests {
		if got := CardinalityRE(tc.est, truth); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("CardinalityRE(%v) = %v, want %v", tc.est, got, tc.want)
		}
	}
	if got := CardinalityRE(5, flow.NewTruth(0)); got != 0 {
		t.Errorf("CardinalityRE with empty truth = %v, want 0", got)
	}
}

func TestHeavyHitters(t *testing.T) {
	truth := buildTruth(map[flow.Key]uint32{k1: 100, k2: 50, k3: 10, k4: 1})

	t.Run("perfect detection", func(t *testing.T) {
		rep := HeavyHitters([]flow.Record{
			{Key: k1, Count: 100}, {Key: k2, Count: 50}, {Key: k3, Count: 10}, {Key: k4, Count: 1},
		}, truth, 50)
		if rep.F1 != 1 || rep.Precision != 1 || rep.Recall != 1 {
			t.Errorf("perfect detection scored %+v", rep)
		}
		if rep.SizeARE != 0 {
			t.Errorf("SizeARE = %v, want 0", rep.SizeARE)
		}
		if rep.Reported != 2 || rep.Real != 2 || rep.Correct != 2 {
			t.Errorf("counts = %+v", rep)
		}
	})

	t.Run("false positive", func(t *testing.T) {
		// k3 reported as 60 though it is really 10.
		rep := HeavyHitters([]flow.Record{
			{Key: k1, Count: 100}, {Key: k2, Count: 50}, {Key: k3, Count: 60},
		}, truth, 50)
		if rep.Reported != 3 || rep.Correct != 2 {
			t.Fatalf("counts = %+v", rep)
		}
		wantP := 2.0 / 3.0
		if math.Abs(rep.Precision-wantP) > 1e-12 || rep.Recall != 1 {
			t.Errorf("P=%v R=%v, want %v and 1", rep.Precision, rep.Recall, wantP)
		}
	})

	t.Run("missed detection", func(t *testing.T) {
		rep := HeavyHitters([]flow.Record{{Key: k1, Count: 100}}, truth, 50)
		if rep.Recall != 0.5 || rep.Precision != 1 {
			t.Errorf("P=%v R=%v, want 1 and 0.5", rep.Precision, rep.Recall)
		}
		wantF1 := 2 * 0.5 / 1.5
		if math.Abs(rep.F1-wantF1) > 1e-12 {
			t.Errorf("F1 = %v, want %v", rep.F1, wantF1)
		}
	})

	t.Run("underreported size misses threshold", func(t *testing.T) {
		// k2 is a real HH but reported size 40 < 50, so it is not claimed.
		rep := HeavyHitters([]flow.Record{
			{Key: k1, Count: 100}, {Key: k2, Count: 40},
		}, truth, 50)
		if rep.Reported != 1 || rep.Correct != 1 {
			t.Errorf("counts = %+v", rep)
		}
	})

	t.Run("size ARE over correct detections", func(t *testing.T) {
		rep := HeavyHitters([]flow.Record{
			{Key: k1, Count: 90}, {Key: k2, Count: 55},
		}, truth, 50)
		want := (math.Abs(90.0/100-1) + math.Abs(55.0/50-1)) / 2
		if math.Abs(rep.SizeARE-want) > 1e-12 {
			t.Errorf("SizeARE = %v, want %v", rep.SizeARE, want)
		}
	})

	t.Run("duplicate reports keep largest", func(t *testing.T) {
		rep := HeavyHitters([]flow.Record{
			{Key: k1, Count: 60}, {Key: k1, Count: 90},
		}, truth, 50)
		if rep.Reported != 1 || rep.Correct != 1 {
			t.Errorf("counts = %+v", rep)
		}
		want := math.Abs(90.0/100 - 1)
		if math.Abs(rep.SizeARE-want) > 1e-12 {
			t.Errorf("SizeARE = %v, want %v", rep.SizeARE, want)
		}
	})

	t.Run("nothing reported", func(t *testing.T) {
		rep := HeavyHitters(nil, truth, 50)
		if rep.F1 != 0 || rep.Precision != 0 || rep.Recall != 0 {
			t.Errorf("empty report scored %+v", rep)
		}
	})
}

func TestTopKAccuracy(t *testing.T) {
	truth := buildTruth(map[flow.Key]uint32{k1: 100, k2: 50, k3: 10, k4: 1})
	tests := []struct {
		name     string
		reported []flow.Record
		k        int
		want     float64
	}{
		{"perfect", []flow.Record{{Key: k1, Count: 100}, {Key: k2, Count: 50}}, 2, 1.0},
		{"half", []flow.Record{{Key: k1, Count: 100}, {Key: k3, Count: 60}}, 2, 0.5},
		{"order within top-k irrelevant", []flow.Record{{Key: k2, Count: 99}, {Key: k1, Count: 98}}, 2, 1.0},
		{"missing report", []flow.Record{{Key: k1, Count: 100}}, 2, 0.5},
		{"zero k", nil, 0, 0},
		{"duplicates keep largest", []flow.Record{{Key: k1, Count: 1}, {Key: k1, Count: 100}, {Key: k2, Count: 50}}, 2, 1.0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := TopKAccuracy(tc.reported, truth, tc.k); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("TopKAccuracy = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestTopKAccuracyKBeyondPopulation(t *testing.T) {
	truth := buildTruth(map[flow.Key]uint32{k1: 10, k2: 5})
	got := TopKAccuracy([]flow.Record{{Key: k1, Count: 10}, {Key: k2, Count: 5}}, truth, 10)
	if got != 1.0 {
		t.Errorf("TopKAccuracy with k > flows = %v, want 1", got)
	}
}

func TestTopKAccuracyEmptyTruth(t *testing.T) {
	if got := TopKAccuracy([]flow.Record{{Key: k1, Count: 1}}, flow.NewTruth(0), 3); got != 0 {
		t.Errorf("TopKAccuracy with empty truth = %v, want 0", got)
	}
}
