package netflow

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkEncodeV5(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	recs := make([]Record, MaxRecordsPerDatagram)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(buf[:0], Header{FlowSequence: uint32(i)}, recs)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeV5(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	recs := make([]Record, MaxRecordsPerDatagram)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	buf, err := Encode(nil, Header{}, recs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeAppendV5(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	recs := make([]Record, MaxRecordsPerDatagram)
	for i := range recs {
		recs[i] = randRecord(rng)
	}
	buf, err := Encode(nil, Header{}, recs)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]Record, 0, MaxRecordsPerDatagram)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeAppend(dst[:0], buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeIPFIXData(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	recs := make([]IPFIXRecord, 200)
	for i := range recs {
		recs[i] = randIPFIXRecord(rng)
	}
	tmpl := EncodeIPFIXTemplate(nil, 0, 0, 1)
	data, err := EncodeIPFIXData(nil, recs, 0, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := NewIPFIXDecoder()
	if _, err := d.Decode(tmpl); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
