package netflow

import (
	"encoding/binary"
	"fmt"
)

// NetFlow v9 (RFC 3954) support. V9 is the template-based predecessor of
// IPFIX: the message header differs (SysUptime instead of a length field,
// record count instead of byte length) and template sets use FlowSet ID 0.
// The same flow template as the IPFIX path is used, so v9 and IPFIX
// exporters are interchangeable in front of the matching decoder.

// V9Version is the version number in every v9 export packet.
const V9Version = 9

const (
	v9HeaderLen = 20
	// V9TemplateFlowSetID is the FlowSet ID reserved for templates in v9.
	V9TemplateFlowSetID = 0
)

// EncodeV9Template appends a v9 export packet carrying the flow template.
func EncodeV9Template(dst []byte, sysUptimeMs, unixSecs, seq, sourceID uint32) []byte {
	setLen := ipfixSetHeaderLen + 4 + 4*len(flowTemplate)
	dst = appendV9Header(dst, 1, sysUptimeMs, unixSecs, seq, sourceID)

	var b [4]byte
	binary.BigEndian.PutUint16(b[0:], V9TemplateFlowSetID)
	binary.BigEndian.PutUint16(b[2:], uint16(setLen))
	dst = append(dst, b[:4]...)
	binary.BigEndian.PutUint16(b[0:], IPFIXFlowTemplateID)
	binary.BigEndian.PutUint16(b[2:], uint16(len(flowTemplate)))
	dst = append(dst, b[:4]...)
	for _, f := range flowTemplate {
		binary.BigEndian.PutUint16(b[0:], f.id)
		binary.BigEndian.PutUint16(b[2:], f.len)
		dst = append(dst, b[:4]...)
	}
	return dst
}

// EncodeV9Data appends a v9 export packet carrying recs.
func EncodeV9Data(dst []byte, recs []IPFIXRecord, sysUptimeMs, unixSecs, seq, sourceID uint32) ([]byte, error) {
	setLen := ipfixSetHeaderLen + flowRecordLen*len(recs)
	if setLen > 0xFFFF {
		return dst, fmt.Errorf("netflow: %d v9 records exceed the 64 KiB FlowSet limit", len(recs))
	}
	dst = appendV9Header(dst, uint16(len(recs)), sysUptimeMs, unixSecs, seq, sourceID)

	var b [8]byte
	binary.BigEndian.PutUint16(b[0:], IPFIXFlowTemplateID)
	binary.BigEndian.PutUint16(b[2:], uint16(setLen))
	dst = append(dst, b[:4]...)
	for _, r := range recs {
		binary.BigEndian.PutUint32(b[0:], r.Key.SrcIP)
		dst = append(dst, b[:4]...)
		binary.BigEndian.PutUint32(b[0:], r.Key.DstIP)
		dst = append(dst, b[:4]...)
		binary.BigEndian.PutUint16(b[0:], r.Key.SrcPort)
		dst = append(dst, b[:2]...)
		binary.BigEndian.PutUint16(b[0:], r.Key.DstPort)
		dst = append(dst, b[:2]...)
		dst = append(dst, r.Key.Proto)
		binary.BigEndian.PutUint64(b[0:], r.Packets)
		dst = append(dst, b[:8]...)
		binary.BigEndian.PutUint64(b[0:], r.Octets)
		dst = append(dst, b[:8]...)
	}
	return dst, nil
}

func appendV9Header(dst []byte, count uint16, sysUptimeMs, unixSecs, seq, sourceID uint32) []byte {
	var h [v9HeaderLen]byte
	binary.BigEndian.PutUint16(h[0:], V9Version)
	binary.BigEndian.PutUint16(h[2:], count)
	binary.BigEndian.PutUint32(h[4:], sysUptimeMs)
	binary.BigEndian.PutUint32(h[8:], unixSecs)
	binary.BigEndian.PutUint32(h[12:], seq)
	binary.BigEndian.PutUint32(h[16:], sourceID)
	return append(dst, h[:]...)
}

// V9Decoder decodes v9 export packets, caching templates per source ID.
type V9Decoder struct {
	inner *IPFIXDecoder
}

// NewV9Decoder returns a decoder with an empty template cache.
func NewV9Decoder() *V9Decoder {
	return &V9Decoder{inner: NewIPFIXDecoder()}
}

// Decode parses one v9 export packet, returning any flow records whose
// template is known.
func (d *V9Decoder) Decode(msg []byte) ([]IPFIXRecord, error) {
	if len(msg) < v9HeaderLen {
		return nil, fmt.Errorf("netflow: v9 packet of %d bytes is shorter than the header", len(msg))
	}
	if v := binary.BigEndian.Uint16(msg[0:]); v != V9Version {
		return nil, fmt.Errorf("netflow: unsupported v9 version %d", v)
	}
	sourceID := binary.BigEndian.Uint32(msg[16:])

	var out []IPFIXRecord
	body := msg[v9HeaderLen:]
	for len(body) > 0 {
		if len(body) < ipfixSetHeaderLen {
			return out, fmt.Errorf("netflow: truncated v9 FlowSet header")
		}
		setID := binary.BigEndian.Uint16(body[0:])
		setLen := int(binary.BigEndian.Uint16(body[2:]))
		if setLen < ipfixSetHeaderLen || setLen > len(body) {
			return out, fmt.Errorf("netflow: bad v9 FlowSet length %d", setLen)
		}
		content := body[ipfixSetHeaderLen:setLen]
		switch {
		case setID == V9TemplateFlowSetID:
			if err := d.inner.parseTemplates(sourceID, content); err != nil {
				return out, err
			}
		case setID >= 256:
			recs, err := d.inner.parseData(sourceID, setID, content)
			if err != nil {
				return out, err
			}
			out = append(out, recs...)
		default:
			// Options templates (ID 1) and reserved FlowSets are skipped.
		}
		body = body[setLen:]
	}
	return out, nil
}
