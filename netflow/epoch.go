package netflow

import "repro/flow"

// Source is the recorder surface the epoch exporter needs;
// flowmon.Recorder satisfies it.
type Source interface {
	Records() []flow.Record
	Reset()
}

// EpochExporter drives the classic NetFlow collection cycle: a measurement
// structure fills during an epoch, then its records are exported and the
// structure is cleared for the next epoch. The paper's algorithms are all
// designed around exactly this per-epoch lifecycle.
type EpochExporter struct {
	src      Source
	exp      *Exporter
	epochs   uint64
	exported uint64
}

// NewEpochExporter couples a recorder to an exporter. src may be nil when
// the epoch lifecycle is driven externally through FlushRecords/FlushFunc
// (Flush then must not be called).
func NewEpochExporter(src Source, exp *Exporter) *EpochExporter {
	return &EpochExporter{src: src, exp: exp}
}

// Flush exports the current epoch's records and resets the recorder.
// It returns the number of records exported.
func (ee *EpochExporter) Flush(avgPktBytes uint32) (int, error) {
	recs := ee.src.Records()
	n, err := ee.FlushRecords(recs, avgPktBytes)
	if err != nil {
		return 0, err
	}
	ee.src.Reset()
	return n, nil
}

// FlushRecords exports one epoch's already-extracted records without
// touching the source recorder — the form an external epoch driver
// (adaptive.Manager's flush callback) uses when extraction and reset
// already happen elsewhere. The records slice is not retained.
func (ee *EpochExporter) FlushRecords(recs []flow.Record, avgPktBytes uint32) (int, error) {
	if err := ee.exp.Export(recs, avgPktBytes); err != nil {
		return 0, err
	}
	ee.epochs++
	ee.exported += uint64(len(recs))
	return len(recs), nil
}

// FlushFunc adapts the exporter to an adaptive flush callback
// (assignable to adaptive.FlushFunc): each completed epoch is exported
// over NetFlow from the drained record buffer, so with a double-buffered
// manager the UDP export runs entirely on the background drain worker and
// reuses the manager's record buffer end to end — no extraction, copy or
// send on the packet path. Export errors go to onErr (may be nil; UDP
// export has nobody else to tell).
func (ee *EpochExporter) FlushFunc(avgPktBytes uint32, onErr func(error)) func(epoch int, records []flow.Record) {
	return func(epoch int, records []flow.Record) {
		if _, err := ee.FlushRecords(records, avgPktBytes); err != nil && onErr != nil {
			onErr(err)
		}
	}
}

// Epochs returns the number of completed epochs.
func (ee *EpochExporter) Epochs() uint64 { return ee.epochs }

// Exported returns the total records exported across epochs.
func (ee *EpochExporter) Exported() uint64 { return ee.exported }
