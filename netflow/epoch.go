package netflow

import "repro/flow"

// Source is the recorder surface the epoch exporter needs;
// flowmon.Recorder satisfies it.
type Source interface {
	Records() []flow.Record
	Reset()
}

// EpochExporter drives the classic NetFlow collection cycle: a measurement
// structure fills during an epoch, then its records are exported and the
// structure is cleared for the next epoch. The paper's algorithms are all
// designed around exactly this per-epoch lifecycle.
type EpochExporter struct {
	src      Source
	exp      *Exporter
	epochs   uint64
	exported uint64
}

// NewEpochExporter couples a recorder to an exporter.
func NewEpochExporter(src Source, exp *Exporter) *EpochExporter {
	return &EpochExporter{src: src, exp: exp}
}

// Flush exports the current epoch's records and resets the recorder.
// It returns the number of records exported.
func (ee *EpochExporter) Flush(avgPktBytes uint32) (int, error) {
	recs := ee.src.Records()
	if err := ee.exp.Export(recs, avgPktBytes); err != nil {
		return 0, err
	}
	ee.src.Reset()
	ee.epochs++
	ee.exported += uint64(len(recs))
	return len(recs), nil
}

// Epochs returns the number of completed epochs.
func (ee *EpochExporter) Epochs() uint64 { return ee.epochs }

// Exported returns the total records exported across epochs.
func (ee *EpochExporter) Exported() uint64 { return ee.exported }
