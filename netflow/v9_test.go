package netflow

import (
	"math/rand/v2"
	"testing"
)

func TestV9RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	recs := make([]IPFIXRecord, 20)
	for i := range recs {
		recs[i] = randIPFIXRecord(rng)
	}

	tmpl := EncodeV9Template(nil, 100, 1700000000, 0, 7)
	data, err := EncodeV9Data(nil, recs, 200, 1700000001, 1, 7)
	if err != nil {
		t.Fatal(err)
	}

	d := NewV9Decoder()
	got, err := d.Decode(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("template packet yielded %d records", len(got))
	}
	got, err = d.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestV9TemplateAndDataInOnePacket(t *testing.T) {
	// A single packet can carry the template FlowSet followed by data:
	// concatenate by hand-splicing the data FlowSet after the template one.
	recs := []IPFIXRecord{{Packets: 5, Octets: 500}}
	tmpl := EncodeV9Template(nil, 0, 0, 0, 1)
	data, err := EncodeV9Data(nil, recs, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	combined := append([]byte(nil), tmpl...)
	combined = append(combined, data[v9HeaderLen:]...)

	got, err := NewV9Decoder().Decode(combined)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != recs[0] {
		t.Fatalf("combined packet decoded %v", got)
	}
}

func TestV9TemplatePerSourceID(t *testing.T) {
	d := NewV9Decoder()
	if _, err := d.Decode(EncodeV9Template(nil, 0, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeV9Data(nil, []IPFIXRecord{{}}, 0, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(data); err == nil {
		t.Error("template leaked across source IDs")
	}
}

func TestV9DecodeErrors(t *testing.T) {
	d := NewV9Decoder()
	if _, err := d.Decode(make([]byte, 8)); err == nil {
		t.Error("accepted short packet")
	}
	msg := EncodeV9Template(nil, 0, 0, 0, 1)
	msg[0], msg[1] = 0, 5
	if _, err := d.Decode(msg); err == nil {
		t.Error("accepted v5 version")
	}
	msg = EncodeV9Template(nil, 0, 0, 0, 1)
	msg[len(msg)-3] = 0xFF // corrupt FlowSet length
	if _, err := d.Decode(msg[:v9HeaderLen+2]); err == nil {
		t.Error("accepted truncated FlowSet header")
	}
}

func TestV9DataSizeLimit(t *testing.T) {
	recs := make([]IPFIXRecord, 3000)
	if _, err := EncodeV9Data(nil, recs, 0, 0, 0, 1); err == nil {
		t.Error("accepted oversized FlowSet")
	}
}
