package netflow

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/flow"
)

func randRecord(rng *rand.Rand) Record {
	return Record{
		SrcIP:    rng.Uint32(),
		DstIP:    rng.Uint32(),
		NextHop:  rng.Uint32(),
		Input:    uint16(rng.Uint32()),
		Output:   uint16(rng.Uint32()),
		Packets:  rng.Uint32(),
		Octets:   rng.Uint32(),
		FirstMs:  rng.Uint32(),
		LastMs:   rng.Uint32(),
		SrcPort:  uint16(rng.Uint32()),
		DstPort:  uint16(rng.Uint32()),
		TCPFlags: uint8(rng.Uint32()),
		Proto:    uint8(rng.Uint32()),
		Tos:      uint8(rng.Uint32()),
		SrcAS:    uint16(rng.Uint32()),
		DstAS:    uint16(rng.Uint32()),
		SrcMask:  uint8(rng.Uint32()),
		DstMask:  uint8(rng.Uint32()),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := rng.IntN(MaxRecordsPerDatagram + 1)
		recs := make([]Record, n)
		for i := range recs {
			recs[i] = randRecord(rng)
		}
		hdr := Header{
			SysUptimeMs:  rng.Uint32(),
			UnixSecs:     rng.Uint32(),
			UnixNsecs:    rng.Uint32(),
			FlowSequence: rng.Uint32(),
			EngineType:   uint8(rng.Uint32()),
			EngineID:     uint8(rng.Uint32()),
			SamplingMode: uint16(rng.Uint32()),
		}
		b, err := Encode(nil, hdr, recs)
		if err != nil {
			t.Fatal(err)
		}
		if want := HeaderLen + n*RecordLen; len(b) != want {
			t.Fatalf("encoded %d bytes, want %d", len(b), want)
		}
		gotHdr, gotRecs, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		hdr.Count = uint16(n)
		if gotHdr != hdr {
			t.Fatalf("header round trip: got %+v, want %+v", gotHdr, hdr)
		}
		if len(gotRecs) != n {
			t.Fatalf("decoded %d records, want %d", len(gotRecs), n)
		}
		for i := range recs {
			if gotRecs[i] != recs[i] {
				t.Fatalf("record %d round trip mismatch", i)
			}
		}
	}
}

func TestEncodeRejectsTooMany(t *testing.T) {
	recs := make([]Record, MaxRecordsPerDatagram+1)
	if _, err := Encode(nil, Header{}, recs); err == nil {
		t.Error("Encode accepted 31 records")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(make([]byte, 10)); err == nil {
		t.Error("Decode accepted short datagram")
	}
	b, err := Encode(nil, Header{}, []Record{{}})
	if err != nil {
		t.Fatal(err)
	}
	b[0], b[1] = 0, 9 // version 9
	if _, _, err := Decode(b); err == nil {
		t.Error("Decode accepted version 9")
	}
	b[0], b[1] = 0, 5
	if _, _, err := Decode(b[:len(b)-1]); err == nil {
		t.Error("Decode accepted truncated records")
	}
}

func TestRecordKeyAndConversion(t *testing.T) {
	fr := flow.Record{
		Key:   flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6},
		Count: 77,
	}
	r := FromFlowRecord(fr, 100)
	if r.Key() != fr.Key {
		t.Errorf("Key() = %+v, want %+v", r.Key(), fr.Key)
	}
	if r.Packets != 77 || r.Octets != 7700 {
		t.Errorf("Packets/Octets = %d/%d, want 77/7700", r.Packets, r.Octets)
	}
}

func TestExporterChunksAndSequences(t *testing.T) {
	var datagrams [][]byte
	exp := NewExporter(func(b []byte) error {
		cp := make([]byte, len(b))
		copy(cp, b)
		datagrams = append(datagrams, cp)
		return nil
	})
	exp.now = func() time.Time { return time.Unix(1700000000, 42) }

	recs := make([]flow.Record, 95) // 30 + 30 + 30 + 5
	rng := rand.New(rand.NewPCG(3, 4))
	for i := range recs {
		recs[i] = flow.Record{
			Key:   flow.Key{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), Proto: 6},
			Count: uint32(i + 1),
		}
	}
	if err := exp.Export(recs, 500); err != nil {
		t.Fatal(err)
	}
	if len(datagrams) != 4 {
		t.Fatalf("sent %d datagrams, want 4", len(datagrams))
	}
	if exp.Sequence() != 95 {
		t.Errorf("Sequence = %d, want 95", exp.Sequence())
	}

	col := NewCollector()
	for _, d := range datagrams {
		if err := col.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	got := col.FlowRecords()
	if len(got) != len(recs) {
		t.Fatalf("collected %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	if col.Lost() != 0 {
		t.Errorf("Lost = %d, want 0", col.Lost())
	}
}

func TestCollectorDetectsLoss(t *testing.T) {
	var datagrams [][]byte
	exp := NewExporter(func(b []byte) error {
		cp := make([]byte, len(b))
		copy(cp, b)
		datagrams = append(datagrams, cp)
		return nil
	})
	recs := make([]flow.Record, 90)
	for i := range recs {
		recs[i] = flow.Record{Key: flow.Key{SrcIP: uint32(i)}, Count: 1}
	}
	if err := exp.Export(recs, 1); err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	// Drop the middle datagram (30 records).
	if err := col.Ingest(datagrams[0]); err != nil {
		t.Fatal(err)
	}
	if err := col.Ingest(datagrams[2]); err != nil {
		t.Fatal(err)
	}
	if col.Lost() != 30 {
		t.Errorf("Lost = %d, want 30", col.Lost())
	}
	if len(col.Records()) != 60 {
		t.Errorf("collected %d records, want 60", len(col.Records()))
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8, pkts uint32) bool {
		rec := Record{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto, Packets: pkts}
		b, err := Encode(nil, Header{FlowSequence: 1}, []Record{rec})
		if err != nil {
			return false
		}
		_, got, err := Decode(b)
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type fakeSource struct {
	recs   []flow.Record
	resets int
}

func (f *fakeSource) Records() []flow.Record { return f.recs }
func (f *fakeSource) Reset()                 { f.resets++; f.recs = nil }

func TestEpochExporter(t *testing.T) {
	src := &fakeSource{recs: []flow.Record{
		{Key: flow.Key{SrcIP: 1}, Count: 5},
		{Key: flow.Key{SrcIP: 2}, Count: 3},
	}}
	var sent int
	exp := NewExporter(func(b []byte) error { sent++; return nil })
	ee := NewEpochExporter(src, exp)

	n, err := ee.Flush(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || src.resets != 1 || sent != 1 {
		t.Errorf("Flush: n=%d resets=%d sent=%d", n, src.resets, sent)
	}
	// Second epoch: empty source exports zero datagrams but still resets.
	n, err = ee.Flush(100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || src.resets != 2 {
		t.Errorf("second Flush: n=%d resets=%d", n, src.resets)
	}
	if ee.Epochs() != 2 || ee.Exported() != 2 {
		t.Errorf("Epochs=%d Exported=%d", ee.Epochs(), ee.Exported())
	}
}
