package netflow

import "net/netip"

// SourceKey identifies one exporter stream. FlowSequence is per exporter
// engine, so gap accounting has to key on the datagram's source address
// plus the engine type/ID carried in the header — two exporters behind
// the same address (or one exporter with two engines) run independent
// sequence spaces.
type SourceKey struct {
	Addr       netip.AddrPort
	EngineType uint8
	EngineID   uint8
}

// SourceStats is a per-exporter accounting snapshot. Datagrams, Records
// and Lost are lifetime counters (they survive Collector.Reset, which is
// per-epoch).
type SourceStats struct {
	Datagrams uint64
	Records   uint64
	Lost      uint64
}

// IngestFrom decodes one datagram and accumulates its records like
// Ingest, but tracks sequence gaps per exporter stream keyed by the
// datagram's source address and the header's engine fields. This is the
// form a shared UDP socket needs: datagrams from many exporters
// interleave, and a single sequence cursor would count every interleaving
// as loss (or mask real loss by constantly resyncing).
func (c *Collector) IngestFrom(src netip.AddrPort, b []byte) error {
	hdr, recs, err := DecodeAppend(c.records, b)
	if err != nil {
		return err
	}
	nrecs := len(recs) - len(c.records)
	c.records = recs
	key := SourceKey{Addr: src, EngineType: hdr.EngineType, EngineID: hdr.EngineID}
	s := c.sources[key]
	if s == nil {
		if c.sources == nil {
			c.sources = make(map[SourceKey]*seqState)
		}
		s = &seqState{}
		c.sources[key] = s
	}
	c.lost += s.advance(hdr, nrecs)
	return nil
}

// Sources returns how many distinct exporter streams IngestFrom has seen.
func (c *Collector) Sources() int { return len(c.sources) }

// SourceStats returns the lifetime per-exporter counters for one stream
// seen by IngestFrom, and whether the stream is known.
func (c *Collector) SourceStats(key SourceKey) (SourceStats, bool) {
	s, ok := c.sources[key]
	if !ok {
		return SourceStats{}, false
	}
	return SourceStats{Datagrams: s.datagrams, Records: s.records, Lost: s.lost}, true
}

// AppendSourceKeys appends the keys of every exporter stream seen by
// IngestFrom to dst and returns the extended slice (order unspecified).
func (c *Collector) AppendSourceKeys(dst []SourceKey) []SourceKey {
	for k := range c.sources {
		dst = append(dst, k)
	}
	return dst
}
