package netflow

import (
	"errors"
	"sync"
	"testing"

	"repro/flow"
)

// TestFlushRecordsCounts: the externally-driven flush path exports the
// given records and advances the counters without touching a source.
func TestFlushRecordsCounts(t *testing.T) {
	var sent [][]byte
	exp := NewExporter(func(b []byte) error {
		sent = append(sent, append([]byte(nil), b...))
		return nil
	})
	ee := NewEpochExporter(nil, exp)

	recs := []flow.Record{
		{Key: flow.Key{SrcIP: 1, DstIP: 2, Proto: 6}, Count: 10},
		{Key: flow.Key{SrcIP: 3, DstIP: 4, Proto: 17}, Count: 20},
	}
	n, err := ee.FlushRecords(recs, 700)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || ee.Epochs() != 1 || ee.Exported() != 2 {
		t.Fatalf("n=%d epochs=%d exported=%d", n, ee.Epochs(), ee.Exported())
	}
	if len(sent) == 0 {
		t.Fatal("nothing hit the wire")
	}

	// The collector must decode exactly what was flushed.
	col := NewCollector()
	for _, dgram := range sent {
		if err := col.Ingest(dgram); err != nil {
			t.Fatal(err)
		}
	}
	if col.Count() != 2 {
		t.Fatalf("collector decoded %d records, want 2", col.Count())
	}
}

// TestFlushFuncAdapter: the adaptive-callback adapter exports each epoch
// and reports errors through onErr.
func TestFlushFuncAdapter(t *testing.T) {
	fail := false
	exp := NewExporter(func(b []byte) error {
		if fail {
			return errors.New("wire down")
		}
		return nil
	})
	ee := NewEpochExporter(nil, exp)
	var mu sync.Mutex
	var errs []error
	fn := ee.FlushFunc(700, func(err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	})

	recs := []flow.Record{{Key: flow.Key{SrcIP: 1, DstIP: 2, Proto: 6}, Count: 5}}
	fn(0, recs)
	if ee.Epochs() != 1 || len(errs) != 0 {
		t.Fatalf("epochs=%d errs=%v", ee.Epochs(), errs)
	}
	fail = true
	fn(1, recs)
	if len(errs) != 1 {
		t.Fatalf("export failure not reported: %v", errs)
	}
	// A nil onErr must not panic.
	ee.FlushFunc(700, nil)(2, recs)
}
