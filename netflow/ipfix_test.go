package netflow

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/flow"
)

func randIPFIXRecord(rng *rand.Rand) IPFIXRecord {
	return IPFIXRecord{
		Key: flow.Key{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Uint32()),
			DstPort: uint16(rng.Uint32()),
			Proto:   uint8(rng.Uint32()),
		},
		Packets: rng.Uint64(),
		Octets:  rng.Uint64(),
	}
}

func TestIPFIXRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	recs := make([]IPFIXRecord, 37)
	for i := range recs {
		recs[i] = randIPFIXRecord(rng)
	}

	tmpl := EncodeIPFIXTemplate(nil, 1700000000, 0, 42)
	data, err := EncodeIPFIXData(nil, recs, 1700000000, 0, 42)
	if err != nil {
		t.Fatal(err)
	}

	d := NewIPFIXDecoder()
	got, err := d.Decode(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("template message yielded %d records", len(got))
	}
	got, err = d.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestIPFIXDataBeforeTemplateFails(t *testing.T) {
	data, err := EncodeIPFIXData(nil, []IPFIXRecord{{}}, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIPFIXDecoder().Decode(data); err == nil {
		t.Error("decoded data set without a template")
	}
}

func TestIPFIXTemplatePerDomain(t *testing.T) {
	// A template learned in domain 1 must not apply to domain 2.
	d := NewIPFIXDecoder()
	if _, err := d.Decode(EncodeIPFIXTemplate(nil, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeIPFIXData(nil, []IPFIXRecord{{}}, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(data); err == nil {
		t.Error("template leaked across observation domains")
	}
}

func TestIPFIXDecodeErrors(t *testing.T) {
	d := NewIPFIXDecoder()
	if _, err := d.Decode(make([]byte, 4)); err == nil {
		t.Error("accepted short message")
	}
	msg := EncodeIPFIXTemplate(nil, 0, 0, 1)
	msg[0], msg[1] = 0, 9 // wrong version
	if _, err := d.Decode(msg); err == nil {
		t.Error("accepted version 9")
	}
	msg = EncodeIPFIXTemplate(nil, 0, 0, 1)
	msg[2], msg[3] = 0xFF, 0xFF // length beyond buffer
	if _, err := d.Decode(msg); err == nil {
		t.Error("accepted truncated message")
	}
}

func TestIPFIXMessageSizeLimit(t *testing.T) {
	recs := make([]IPFIXRecord, 3000) // 3000*29 > 64 KiB
	if _, err := EncodeIPFIXData(nil, recs, 0, 0, 1); err == nil {
		t.Error("accepted oversized data message")
	}
}

func TestIPFIXExporter(t *testing.T) {
	var msgs [][]byte
	exp := NewIPFIXExporter(func(b []byte) error {
		cp := make([]byte, len(b))
		copy(cp, b)
		msgs = append(msgs, cp)
		return nil
	}, 7)
	exp.now = func() time.Time { return time.Unix(1700000000, 0) }
	exp.RecordsPerMessage = 10

	rng := rand.New(rand.NewPCG(3, 4))
	recs := make([]IPFIXRecord, 25)
	for i := range recs {
		recs[i] = randIPFIXRecord(rng)
	}
	if err := exp.Export(recs); err != nil {
		t.Fatal(err)
	}
	// 1 template + 3 data messages (10+10+5).
	if len(msgs) != 4 {
		t.Fatalf("sent %d messages, want 4", len(msgs))
	}

	d := NewIPFIXDecoder()
	var got []IPFIXRecord
	for _, m := range msgs {
		r, err := d.Decode(m)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r...)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestIPFIXExporterReannouncesTemplate(t *testing.T) {
	templates := 0
	exp := NewIPFIXExporter(func(b []byte) error {
		// A template message contains set ID 2 right after the header.
		if len(b) >= ipfixHeaderLen+2 && b[ipfixHeaderLen] == 0 && b[ipfixHeaderLen+1] == IPFIXTemplateSetID {
			templates++
		}
		return nil
	}, 1)
	exp.TemplateEvery = 2
	recs := []IPFIXRecord{{Packets: 1}}
	for i := 0; i < 6; i++ {
		if err := exp.Export(recs); err != nil {
			t.Fatal(err)
		}
	}
	// 6 data messages with TemplateEvery=2 → template before messages 1, 3, 5.
	if templates != 3 {
		t.Errorf("sent %d templates, want 3", templates)
	}
}

func TestBeUint(t *testing.T) {
	tests := []struct {
		in   []byte
		want uint64
	}{
		{[]byte{0x01}, 1},
		{[]byte{0x01, 0x00}, 256},
		{[]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, ^uint64(0)},
		{nil, 0},
	}
	for _, tc := range tests {
		if got := beUint(tc.in); got != tc.want {
			t.Errorf("beUint(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
