// Package netflow implements NetFlow v5 export and collection: the wire
// format, an exporter that chunks flow records into datagrams, and a
// collector that decodes them. Together with a flowmon.Recorder this forms
// the complete flow-record collection pipeline the paper's title refers to:
// the switch-side data structure fills during a measurement epoch, then its
// records are exported to a central collector.
package netflow

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/flow"
)

// Version is the NetFlow export format version implemented here.
const Version = 5

// Wire sizes of the v5 format.
const (
	HeaderLen = 24
	RecordLen = 48
	// MaxRecordsPerDatagram is the v5 limit of 30 records per datagram.
	MaxRecordsPerDatagram = 30
	// MaxDatagramLen is the largest datagram Encode produces.
	MaxDatagramLen = HeaderLen + MaxRecordsPerDatagram*RecordLen
)

// Header is the NetFlow v5 datagram header.
type Header struct {
	Count        uint16 // number of records in this datagram
	SysUptimeMs  uint32 // milliseconds since exporter boot
	UnixSecs     uint32 // export timestamp, seconds
	UnixNsecs    uint32 // export timestamp, residual nanoseconds
	FlowSequence uint32 // total records exported before this datagram
	EngineType   uint8
	EngineID     uint8
	SamplingMode uint16 // sampling mode and interval
}

// Record is one NetFlow v5 flow record. Fields the measurement algorithms
// do not populate (AS numbers, interfaces, masks) are carried for wire
// compatibility and round-trip fidelity.
type Record struct {
	SrcIP, DstIP, NextHop uint32
	Input, Output         uint16
	Packets, Octets       uint32
	FirstMs, LastMs       uint32 // flow start/end in SysUptime milliseconds
	SrcPort, DstPort      uint16
	TCPFlags, Proto, Tos  uint8
	SrcAS, DstAS          uint16
	SrcMask, DstMask      uint8
}

// Key returns the flow key of the record.
func (r Record) Key() flow.Key {
	return flow.Key{
		SrcIP:   r.SrcIP,
		DstIP:   r.DstIP,
		SrcPort: r.SrcPort,
		DstPort: r.DstPort,
		Proto:   r.Proto,
	}
}

// FromFlowRecord converts a measurement flow record into a v5 record.
// The v5 octet counter is a 32-bit field, so the estimated byte count
// (packets x avgPktBytes) saturates at math.MaxUint32 rather than
// silently wrapping: a 3M-packet flow at 1500 B/pkt already exceeds 4 GiB.
func FromFlowRecord(fr flow.Record, avgPktBytes uint32) Record {
	octets := uint64(fr.Count) * uint64(avgPktBytes)
	if octets > math.MaxUint32 {
		octets = math.MaxUint32
	}
	return Record{
		SrcIP:   fr.Key.SrcIP,
		DstIP:   fr.Key.DstIP,
		SrcPort: fr.Key.SrcPort,
		DstPort: fr.Key.DstPort,
		Proto:   fr.Key.Proto,
		Packets: fr.Count,
		Octets:  uint32(octets),
	}
}

// Encode appends one datagram carrying hdr and recs to dst and returns the
// extended slice. len(recs) must not exceed MaxRecordsPerDatagram.
func Encode(dst []byte, hdr Header, recs []Record) ([]byte, error) {
	if len(recs) > MaxRecordsPerDatagram {
		return dst, fmt.Errorf("netflow: %d records exceed the %d per-datagram limit",
			len(recs), MaxRecordsPerDatagram)
	}
	hdr.Count = uint16(len(recs))

	var h [HeaderLen]byte
	binary.BigEndian.PutUint16(h[0:], Version)
	binary.BigEndian.PutUint16(h[2:], hdr.Count)
	binary.BigEndian.PutUint32(h[4:], hdr.SysUptimeMs)
	binary.BigEndian.PutUint32(h[8:], hdr.UnixSecs)
	binary.BigEndian.PutUint32(h[12:], hdr.UnixNsecs)
	binary.BigEndian.PutUint32(h[16:], hdr.FlowSequence)
	h[20] = hdr.EngineType
	h[21] = hdr.EngineID
	binary.BigEndian.PutUint16(h[22:], hdr.SamplingMode)
	dst = append(dst, h[:]...)

	var b [RecordLen]byte
	for _, r := range recs {
		binary.BigEndian.PutUint32(b[0:], r.SrcIP)
		binary.BigEndian.PutUint32(b[4:], r.DstIP)
		binary.BigEndian.PutUint32(b[8:], r.NextHop)
		binary.BigEndian.PutUint16(b[12:], r.Input)
		binary.BigEndian.PutUint16(b[14:], r.Output)
		binary.BigEndian.PutUint32(b[16:], r.Packets)
		binary.BigEndian.PutUint32(b[20:], r.Octets)
		binary.BigEndian.PutUint32(b[24:], r.FirstMs)
		binary.BigEndian.PutUint32(b[28:], r.LastMs)
		binary.BigEndian.PutUint16(b[32:], r.SrcPort)
		binary.BigEndian.PutUint16(b[34:], r.DstPort)
		b[36] = 0 // pad
		b[37] = r.TCPFlags
		b[38] = r.Proto
		b[39] = r.Tos
		binary.BigEndian.PutUint16(b[40:], r.SrcAS)
		binary.BigEndian.PutUint16(b[42:], r.DstAS)
		b[44] = r.SrcMask
		b[45] = r.DstMask
		b[46], b[47] = 0, 0 // pad
		dst = append(dst, b[:]...)
	}
	return dst, nil
}

// Decode parses one v5 datagram.
func Decode(b []byte) (Header, []Record, error) {
	return DecodeAppend(nil, b)
}

// DecodeAppend parses one v5 datagram, appending its records to dst, and
// returns the header and the extended slice. On error dst is returned
// unchanged: validation happens before any record is appended. This is the
// allocation-free form of Decode — a receive loop reusing one record
// buffer per reader pays nothing per datagram instead of Decode's
// make([]Record, hdr.Count).
func DecodeAppend(dst []Record, b []byte) (Header, []Record, error) {
	if len(b) < HeaderLen {
		return Header{}, dst, fmt.Errorf("netflow: datagram of %d bytes is shorter than the header", len(b))
	}
	if v := binary.BigEndian.Uint16(b[0:]); v != Version {
		return Header{}, dst, fmt.Errorf("netflow: unsupported version %d", v)
	}
	hdr := Header{
		Count:        binary.BigEndian.Uint16(b[2:]),
		SysUptimeMs:  binary.BigEndian.Uint32(b[4:]),
		UnixSecs:     binary.BigEndian.Uint32(b[8:]),
		UnixNsecs:    binary.BigEndian.Uint32(b[12:]),
		FlowSequence: binary.BigEndian.Uint32(b[16:]),
		EngineType:   b[20],
		EngineID:     b[21],
		SamplingMode: binary.BigEndian.Uint16(b[22:]),
	}
	want := HeaderLen + int(hdr.Count)*RecordLen
	if len(b) < want {
		return Header{}, dst, fmt.Errorf("netflow: datagram of %d bytes carries %d records, need %d bytes",
			len(b), hdr.Count, want)
	}
	for i := 0; i < int(hdr.Count); i++ {
		r := b[HeaderLen+i*RecordLen:]
		dst = append(dst, Record{
			SrcIP:    binary.BigEndian.Uint32(r[0:]),
			DstIP:    binary.BigEndian.Uint32(r[4:]),
			NextHop:  binary.BigEndian.Uint32(r[8:]),
			Input:    binary.BigEndian.Uint16(r[12:]),
			Output:   binary.BigEndian.Uint16(r[14:]),
			Packets:  binary.BigEndian.Uint32(r[16:]),
			Octets:   binary.BigEndian.Uint32(r[20:]),
			FirstMs:  binary.BigEndian.Uint32(r[24:]),
			LastMs:   binary.BigEndian.Uint32(r[28:]),
			SrcPort:  binary.BigEndian.Uint16(r[32:]),
			DstPort:  binary.BigEndian.Uint16(r[34:]),
			TCPFlags: r[37],
			Proto:    r[38],
			Tos:      r[39],
			SrcAS:    binary.BigEndian.Uint16(r[40:]),
			DstAS:    binary.BigEndian.Uint16(r[42:]),
			SrcMask:  r[44],
			DstMask:  r[45],
		})
	}
	return hdr, dst, nil
}

// nowFunc allows tests to pin time.
type nowFunc func() time.Time

// Exporter turns flow records into a stream of v5 datagrams with correct
// sequence numbering.
type Exporter struct {
	send func(b []byte) error
	seq  uint32
	boot time.Time
	now  nowFunc
	buf  []byte
}

// NewExporter builds an exporter that delivers each encoded datagram via
// send (typically a UDP write).
func NewExporter(send func(b []byte) error) *Exporter {
	return &Exporter{send: send, boot: time.Now(), now: time.Now}
}

// Export encodes recs into as many datagrams as needed and sends them.
// avgPktBytes populates the octet counters for record conversion.
func (e *Exporter) Export(recs []flow.Record, avgPktBytes uint32) error {
	for start := 0; start < len(recs); start += MaxRecordsPerDatagram {
		end := start + MaxRecordsPerDatagram
		if end > len(recs) {
			end = len(recs)
		}
		batch := make([]Record, 0, end-start)
		for _, fr := range recs[start:end] {
			batch = append(batch, FromFlowRecord(fr, avgPktBytes))
		}
		now := e.now()
		hdr := Header{
			SysUptimeMs:  uint32(now.Sub(e.boot).Milliseconds()),
			UnixSecs:     uint32(now.Unix()),
			UnixNsecs:    uint32(now.Nanosecond()),
			FlowSequence: e.seq,
		}
		var err error
		e.buf, err = Encode(e.buf[:0], hdr, batch)
		if err != nil {
			return err
		}
		if err := e.send(e.buf); err != nil {
			return fmt.Errorf("netflow: send datagram: %w", err)
		}
		e.seq += uint32(len(batch))
	}
	return nil
}

// Sequence returns the total number of records exported so far.
func (e *Exporter) Sequence() uint32 { return e.seq }

// Collector accumulates records decoded from v5 datagrams and tracks
// sequence gaps (lost datagrams). Ingest tracks a single exporter stream;
// IngestFrom tracks one sequence space per exporter (source address +
// engine), which interleaved exporters need — see source.go.
type Collector struct {
	records []Record
	seq     seqState
	sources map[SourceKey]*seqState
	lost    uint64 // records inferred lost since the last Reset
}

// seqState is the per-stream sequence cursor. FlowSequence counts records
// (not datagrams), so the expected next value is the last one plus the
// record count of the last datagram.
type seqState struct {
	nextSeq   uint32
	started   bool
	lost      uint64 // lifetime, survives Reset (per-source diagnostics)
	datagrams uint64
	records   uint64
}

// advance accounts one datagram's header against the cursor and returns
// how many records the sequence number says were missed since the last
// datagram. The gap is a signed 32-bit delta so that loss counting keeps
// working after FlowSequence wraps at 2^32 records: an unsigned
// comparison is false across the wrap, silently dropping the gap. A
// negative delta (a duplicated or reordered datagram) is not a loss and
// does not move the cursor backwards.
func (s *seqState) advance(hdr Header, nrecs int) uint64 {
	var gap uint64
	if s.started {
		delta := int32(hdr.FlowSequence - s.nextSeq)
		if delta > 0 {
			gap = uint64(delta)
		}
		if delta < 0 {
			s.datagrams++
			s.records += uint64(nrecs)
			return 0
		}
	}
	s.started = true
	s.nextSeq = hdr.FlowSequence + uint32(nrecs)
	s.lost += gap
	s.datagrams++
	s.records += uint64(nrecs)
	return gap
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

// Ingest decodes one datagram and accumulates its records, tracking
// sequence gaps against a single exporter stream. Datagrams from multiple
// exporters must go through IngestFrom instead, or their interleaved
// sequence spaces corrupt the gap math.
func (c *Collector) Ingest(b []byte) error {
	hdr, recs, err := DecodeAppend(c.records, b)
	if err != nil {
		return err
	}
	nrecs := len(recs) - len(c.records)
	c.records = recs
	c.lost += c.seq.advance(hdr, nrecs)
	return nil
}

// Records returns a copy of all collected records.
func (c *Collector) Records() []Record {
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// FlowRecords converts the collected records back into measurement flow
// records.
func (c *Collector) FlowRecords() []flow.Record {
	return c.AppendFlowRecords(make([]flow.Record, 0, len(c.records)))
}

// AppendFlowRecords appends the collected records, converted back into
// measurement flow records, to dst and returns the extended slice. A
// collector server draining one epoch per quiet gap reuses a single buffer
// across epochs so the receive loop does not allocate per epoch.
func (c *Collector) AppendFlowRecords(dst []flow.Record) []flow.Record {
	for _, r := range c.records {
		dst = append(dst, flow.Record{Key: r.Key(), Count: r.Packets})
	}
	return dst
}

// Reset clears the collected records and the per-epoch loss counter so
// the collector can accumulate the next epoch, retaining its record
// storage. Sequence cursors are preserved: a datagram dropped across an
// epoch boundary (exactly the quiet-gap window that closes an epoch)
// still shows up as a gap on the first datagram of the next epoch —
// zeroing the cursor here would silently resync instead.
func (c *Collector) Reset() {
	c.records = c.records[:0]
	c.lost = 0
}

// Count returns the number of records collected so far without copying.
func (c *Collector) Count() int { return len(c.records) }

// Lost returns the number of records inferred missing from sequence gaps
// since the last Reset (across all sources when IngestFrom is used).
func (c *Collector) Lost() uint64 { return c.lost }
