// Package netflow implements NetFlow v5 export and collection: the wire
// format, an exporter that chunks flow records into datagrams, and a
// collector that decodes them. Together with a flowmon.Recorder this forms
// the complete flow-record collection pipeline the paper's title refers to:
// the switch-side data structure fills during a measurement epoch, then its
// records are exported to a central collector.
package netflow

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/flow"
)

// Version is the NetFlow export format version implemented here.
const Version = 5

// Wire sizes of the v5 format.
const (
	HeaderLen = 24
	RecordLen = 48
	// MaxRecordsPerDatagram is the v5 limit of 30 records per datagram.
	MaxRecordsPerDatagram = 30
	// MaxDatagramLen is the largest datagram Encode produces.
	MaxDatagramLen = HeaderLen + MaxRecordsPerDatagram*RecordLen
)

// Header is the NetFlow v5 datagram header.
type Header struct {
	Count        uint16 // number of records in this datagram
	SysUptimeMs  uint32 // milliseconds since exporter boot
	UnixSecs     uint32 // export timestamp, seconds
	UnixNsecs    uint32 // export timestamp, residual nanoseconds
	FlowSequence uint32 // total records exported before this datagram
	EngineType   uint8
	EngineID     uint8
	SamplingMode uint16 // sampling mode and interval
}

// Record is one NetFlow v5 flow record. Fields the measurement algorithms
// do not populate (AS numbers, interfaces, masks) are carried for wire
// compatibility and round-trip fidelity.
type Record struct {
	SrcIP, DstIP, NextHop uint32
	Input, Output         uint16
	Packets, Octets       uint32
	FirstMs, LastMs       uint32 // flow start/end in SysUptime milliseconds
	SrcPort, DstPort      uint16
	TCPFlags, Proto, Tos  uint8
	SrcAS, DstAS          uint16
	SrcMask, DstMask      uint8
}

// Key returns the flow key of the record.
func (r Record) Key() flow.Key {
	return flow.Key{
		SrcIP:   r.SrcIP,
		DstIP:   r.DstIP,
		SrcPort: r.SrcPort,
		DstPort: r.DstPort,
		Proto:   r.Proto,
	}
}

// FromFlowRecord converts a measurement flow record into a v5 record.
func FromFlowRecord(fr flow.Record, avgPktBytes uint32) Record {
	return Record{
		SrcIP:   fr.Key.SrcIP,
		DstIP:   fr.Key.DstIP,
		SrcPort: fr.Key.SrcPort,
		DstPort: fr.Key.DstPort,
		Proto:   fr.Key.Proto,
		Packets: fr.Count,
		Octets:  fr.Count * avgPktBytes,
	}
}

// Encode appends one datagram carrying hdr and recs to dst and returns the
// extended slice. len(recs) must not exceed MaxRecordsPerDatagram.
func Encode(dst []byte, hdr Header, recs []Record) ([]byte, error) {
	if len(recs) > MaxRecordsPerDatagram {
		return dst, fmt.Errorf("netflow: %d records exceed the %d per-datagram limit",
			len(recs), MaxRecordsPerDatagram)
	}
	hdr.Count = uint16(len(recs))

	var h [HeaderLen]byte
	binary.BigEndian.PutUint16(h[0:], Version)
	binary.BigEndian.PutUint16(h[2:], hdr.Count)
	binary.BigEndian.PutUint32(h[4:], hdr.SysUptimeMs)
	binary.BigEndian.PutUint32(h[8:], hdr.UnixSecs)
	binary.BigEndian.PutUint32(h[12:], hdr.UnixNsecs)
	binary.BigEndian.PutUint32(h[16:], hdr.FlowSequence)
	h[20] = hdr.EngineType
	h[21] = hdr.EngineID
	binary.BigEndian.PutUint16(h[22:], hdr.SamplingMode)
	dst = append(dst, h[:]...)

	var b [RecordLen]byte
	for _, r := range recs {
		binary.BigEndian.PutUint32(b[0:], r.SrcIP)
		binary.BigEndian.PutUint32(b[4:], r.DstIP)
		binary.BigEndian.PutUint32(b[8:], r.NextHop)
		binary.BigEndian.PutUint16(b[12:], r.Input)
		binary.BigEndian.PutUint16(b[14:], r.Output)
		binary.BigEndian.PutUint32(b[16:], r.Packets)
		binary.BigEndian.PutUint32(b[20:], r.Octets)
		binary.BigEndian.PutUint32(b[24:], r.FirstMs)
		binary.BigEndian.PutUint32(b[28:], r.LastMs)
		binary.BigEndian.PutUint16(b[32:], r.SrcPort)
		binary.BigEndian.PutUint16(b[34:], r.DstPort)
		b[36] = 0 // pad
		b[37] = r.TCPFlags
		b[38] = r.Proto
		b[39] = r.Tos
		binary.BigEndian.PutUint16(b[40:], r.SrcAS)
		binary.BigEndian.PutUint16(b[42:], r.DstAS)
		b[44] = r.SrcMask
		b[45] = r.DstMask
		b[46], b[47] = 0, 0 // pad
		dst = append(dst, b[:]...)
	}
	return dst, nil
}

// Decode parses one v5 datagram.
func Decode(b []byte) (Header, []Record, error) {
	if len(b) < HeaderLen {
		return Header{}, nil, fmt.Errorf("netflow: datagram of %d bytes is shorter than the header", len(b))
	}
	if v := binary.BigEndian.Uint16(b[0:]); v != Version {
		return Header{}, nil, fmt.Errorf("netflow: unsupported version %d", v)
	}
	hdr := Header{
		Count:        binary.BigEndian.Uint16(b[2:]),
		SysUptimeMs:  binary.BigEndian.Uint32(b[4:]),
		UnixSecs:     binary.BigEndian.Uint32(b[8:]),
		UnixNsecs:    binary.BigEndian.Uint32(b[12:]),
		FlowSequence: binary.BigEndian.Uint32(b[16:]),
		EngineType:   b[20],
		EngineID:     b[21],
		SamplingMode: binary.BigEndian.Uint16(b[22:]),
	}
	want := HeaderLen + int(hdr.Count)*RecordLen
	if len(b) < want {
		return Header{}, nil, fmt.Errorf("netflow: datagram of %d bytes carries %d records, need %d bytes",
			len(b), hdr.Count, want)
	}
	recs := make([]Record, hdr.Count)
	for i := range recs {
		r := b[HeaderLen+i*RecordLen:]
		recs[i] = Record{
			SrcIP:    binary.BigEndian.Uint32(r[0:]),
			DstIP:    binary.BigEndian.Uint32(r[4:]),
			NextHop:  binary.BigEndian.Uint32(r[8:]),
			Input:    binary.BigEndian.Uint16(r[12:]),
			Output:   binary.BigEndian.Uint16(r[14:]),
			Packets:  binary.BigEndian.Uint32(r[16:]),
			Octets:   binary.BigEndian.Uint32(r[20:]),
			FirstMs:  binary.BigEndian.Uint32(r[24:]),
			LastMs:   binary.BigEndian.Uint32(r[28:]),
			SrcPort:  binary.BigEndian.Uint16(r[32:]),
			DstPort:  binary.BigEndian.Uint16(r[34:]),
			TCPFlags: r[37],
			Proto:    r[38],
			Tos:      r[39],
			SrcAS:    binary.BigEndian.Uint16(r[40:]),
			DstAS:    binary.BigEndian.Uint16(r[42:]),
			SrcMask:  r[44],
			DstMask:  r[45],
		}
	}
	return hdr, recs, nil
}

// nowFunc allows tests to pin time.
type nowFunc func() time.Time

// Exporter turns flow records into a stream of v5 datagrams with correct
// sequence numbering.
type Exporter struct {
	send func(b []byte) error
	seq  uint32
	boot time.Time
	now  nowFunc
	buf  []byte
}

// NewExporter builds an exporter that delivers each encoded datagram via
// send (typically a UDP write).
func NewExporter(send func(b []byte) error) *Exporter {
	return &Exporter{send: send, boot: time.Now(), now: time.Now}
}

// Export encodes recs into as many datagrams as needed and sends them.
// avgPktBytes populates the octet counters for record conversion.
func (e *Exporter) Export(recs []flow.Record, avgPktBytes uint32) error {
	for start := 0; start < len(recs); start += MaxRecordsPerDatagram {
		end := start + MaxRecordsPerDatagram
		if end > len(recs) {
			end = len(recs)
		}
		batch := make([]Record, 0, end-start)
		for _, fr := range recs[start:end] {
			batch = append(batch, FromFlowRecord(fr, avgPktBytes))
		}
		now := e.now()
		hdr := Header{
			SysUptimeMs:  uint32(now.Sub(e.boot).Milliseconds()),
			UnixSecs:     uint32(now.Unix()),
			UnixNsecs:    uint32(now.Nanosecond()),
			FlowSequence: e.seq,
		}
		var err error
		e.buf, err = Encode(e.buf[:0], hdr, batch)
		if err != nil {
			return err
		}
		if err := e.send(e.buf); err != nil {
			return fmt.Errorf("netflow: send datagram: %w", err)
		}
		e.seq += uint32(len(batch))
	}
	return nil
}

// Sequence returns the total number of records exported so far.
func (e *Exporter) Sequence() uint32 { return e.seq }

// Collector accumulates records decoded from v5 datagrams and tracks
// sequence gaps (lost datagrams).
type Collector struct {
	records []Record
	nextSeq uint32
	started bool
	lost    uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

// Ingest decodes one datagram and accumulates its records.
func (c *Collector) Ingest(b []byte) error {
	hdr, recs, err := Decode(b)
	if err != nil {
		return err
	}
	if c.started && hdr.FlowSequence != c.nextSeq {
		if hdr.FlowSequence > c.nextSeq {
			c.lost += uint64(hdr.FlowSequence - c.nextSeq)
		}
	}
	c.started = true
	c.nextSeq = hdr.FlowSequence + uint32(len(recs))
	c.records = append(c.records, recs...)
	return nil
}

// Records returns a copy of all collected records.
func (c *Collector) Records() []Record {
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// FlowRecords converts the collected records back into measurement flow
// records.
func (c *Collector) FlowRecords() []flow.Record {
	return c.AppendFlowRecords(make([]flow.Record, 0, len(c.records)))
}

// AppendFlowRecords appends the collected records, converted back into
// measurement flow records, to dst and returns the extended slice. A
// collector server draining one epoch per quiet gap reuses a single buffer
// across epochs so the receive loop does not allocate per epoch.
func (c *Collector) AppendFlowRecords(dst []flow.Record) []flow.Record {
	for _, r := range c.records {
		dst = append(dst, flow.Record{Key: r.Key(), Count: r.Packets})
	}
	return dst
}

// Reset clears the collected records and the sequence tracking so the
// collector can accumulate the next epoch, retaining its record storage.
func (c *Collector) Reset() {
	c.records = c.records[:0]
	c.started = false
	c.nextSeq = 0
	c.lost = 0
}

// Count returns the number of records collected so far without copying.
func (c *Collector) Count() int { return len(c.records) }

// Lost returns the number of records inferred missing from sequence gaps.
func (c *Collector) Lost() uint64 { return c.lost }
