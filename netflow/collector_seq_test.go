package netflow

import (
	"math"
	"net/netip"
	"testing"

	"repro/flow"
)

// mkDatagram encodes one datagram with n records starting at sequence
// number seq, for sequence-accounting tests that need exact control over
// the header.
func mkDatagram(t *testing.T, seq uint32, n int, engineID uint8) []byte {
	t.Helper()
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{SrcIP: seq + uint32(i), Packets: 1}
	}
	b, err := Encode(nil, Header{FlowSequence: seq, EngineID: engineID}, recs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Sequence-gap accounting must survive the uint32 wrap of FlowSequence:
// with the unsigned comparison the gap check is false right after the
// 4B-record wrap, so loss counting silently stops and resyncs.
func TestIngestSequenceWraparound(t *testing.T) {
	c := NewCollector()
	// Last datagram before the wrap: 30 records ending at 2^32-15.
	if err := c.Ingest(mkDatagram(t, math.MaxUint32-44, 30, 0)); err != nil {
		t.Fatal(err)
	}
	// The next datagram (seq 2^32-15, 30 records, ending at 15 past the
	// wrap) is dropped. The one after arrives with the wrapped sequence.
	if err := c.Ingest(mkDatagram(t, 15, 30, 0)); err != nil {
		t.Fatal(err)
	}
	if c.Lost() != 30 {
		t.Errorf("Lost = %d across the wrap, want 30", c.Lost())
	}

	// No-loss wrap: consecutive datagrams across the boundary count zero.
	c2 := NewCollector()
	if err := c2.Ingest(mkDatagram(t, math.MaxUint32-14, 15, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ingest(mkDatagram(t, 0, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if c2.Lost() != 0 {
		t.Errorf("Lost = %d on a gapless wrap, want 0", c2.Lost())
	}
}

// A datagram dropped across an epoch boundary — exactly the quiet-gap
// window that closes an epoch — must still be counted as lost: Reset may
// clear records and the per-epoch loss counter, but not the sequence
// cursor.
func TestResetPreservesSequenceContinuity(t *testing.T) {
	c := NewCollector()
	if err := c.Ingest(mkDatagram(t, 0, 30, 0)); err != nil {
		t.Fatal(err)
	}
	c.Reset() // epoch boundary
	if c.Count() != 0 {
		t.Fatalf("Reset kept %d records", c.Count())
	}
	// The datagram covering records 30..59 was dropped in the gap; the
	// next epoch opens with sequence 60.
	if err := c.Ingest(mkDatagram(t, 60, 30, 0)); err != nil {
		t.Fatal(err)
	}
	if c.Lost() != 30 {
		t.Errorf("Lost = %d after cross-epoch drop, want 30", c.Lost())
	}

	// And the per-source path preserves its cursors across Reset too.
	src := netip.MustParseAddrPort("10.0.0.1:2055")
	cs := NewCollector()
	if err := cs.IngestFrom(src, mkDatagram(t, 0, 30, 7)); err != nil {
		t.Fatal(err)
	}
	cs.Reset()
	if err := cs.IngestFrom(src, mkDatagram(t, 60, 30, 7)); err != nil {
		t.Fatal(err)
	}
	if cs.Lost() != 30 {
		t.Errorf("per-source Lost = %d after cross-epoch drop, want 30", cs.Lost())
	}
}

// A duplicated or reordered datagram has a negative sequence delta: it is
// not loss and must not rewind the cursor (which would double-count the
// records in between on the next in-order datagram).
func TestIngestReorderedDatagramNotCountedLost(t *testing.T) {
	c := NewCollector()
	d0 := mkDatagram(t, 0, 30, 0)
	d1 := mkDatagram(t, 30, 30, 0)
	for _, d := range [][]byte{d0, d1, d0, mkDatagram(t, 60, 30, 0)} {
		if err := c.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	if c.Lost() != 0 {
		t.Errorf("Lost = %d with a duplicated datagram, want 0", c.Lost())
	}
}

// Two exporters interleaving on one socket must not corrupt each other's
// gap math: the single-cursor Ingest would see every interleaving as a
// gap or a resync, while IngestFrom keys the cursor by source + engine.
func TestIngestFromInterleavedExporters(t *testing.T) {
	a := netip.MustParseAddrPort("10.0.0.1:2055")
	b := netip.MustParseAddrPort("10.0.0.2:2055")
	c := NewCollector()
	// Perfectly interleaved, no loss anywhere.
	for i := uint32(0); i < 5; i++ {
		if err := c.IngestFrom(a, mkDatagram(t, i*30, 30, 1)); err != nil {
			t.Fatal(err)
		}
		if err := c.IngestFrom(b, mkDatagram(t, i*20, 20, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Lost() != 0 {
		t.Errorf("Lost = %d on interleaved exporters, want 0", c.Lost())
	}
	if c.Count() != 5*30+5*20 {
		t.Errorf("Count = %d, want %d", c.Count(), 5*30+5*20)
	}
	if c.Sources() != 2 {
		t.Errorf("Sources = %d, want 2", c.Sources())
	}

	// Now drop one datagram from exporter b only: the loss must land on
	// b's stream, not a's.
	if err := c.IngestFrom(a, mkDatagram(t, 150, 30, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestFrom(b, mkDatagram(t, 120, 20, 2)); err != nil { // 100..119 dropped
		t.Fatal(err)
	}
	if c.Lost() != 20 {
		t.Errorf("Lost = %d after one dropped datagram, want 20", c.Lost())
	}
	sa, ok := c.SourceStats(SourceKey{Addr: a, EngineType: 0, EngineID: 1})
	if !ok || sa.Lost != 0 || sa.Datagrams != 6 || sa.Records != 180 {
		t.Errorf("source a stats = %+v ok=%v, want 6 datagrams, 180 records, 0 lost", sa, ok)
	}
	sb, ok := c.SourceStats(SourceKey{Addr: b, EngineType: 0, EngineID: 2})
	if !ok || sb.Lost != 20 || sb.Datagrams != 6 || sb.Records != 120 {
		t.Errorf("source b stats = %+v ok=%v, want 6 datagrams, 120 records, 20 lost", sb, ok)
	}

	// The same address with a different engine ID is a distinct stream.
	if err := c.IngestFrom(a, mkDatagram(t, 0, 10, 9)); err != nil {
		t.Fatal(err)
	}
	if c.Sources() != 3 {
		t.Errorf("Sources = %d after second engine, want 3", c.Sources())
	}
	if keys := c.AppendSourceKeys(nil); len(keys) != 3 {
		t.Errorf("AppendSourceKeys returned %d keys, want 3", len(keys))
	}
}

// The v5 octet counter is 32-bit: the packets x avgPktBytes estimate must
// saturate instead of wrapping for elephant flows.
func TestFromFlowRecordSaturatesOctets(t *testing.T) {
	fr := flow.Record{Key: flow.Key{SrcIP: 1}, Count: 3_000_000}
	if got := FromFlowRecord(fr, 1500).Octets; got != math.MaxUint32 {
		t.Errorf("Octets = %d for a 4.5 GB flow, want saturation at %d", got, uint32(math.MaxUint32))
	}
	// Exactly at the limit (65535 x 65537 = 2^32-1): representable, exact.
	fr.Count = 65535
	if got := FromFlowRecord(fr, 65537).Octets; got != math.MaxUint32 {
		t.Errorf("Octets = %d at exactly 2^32-1, want %d", got, uint32(math.MaxUint32))
	}
	// One under the limit stays exact.
	fr.Count = (1 << 31) / 1500
	want := uint32(fr.Count * 1500)
	if got := FromFlowRecord(fr, 1500).Octets; got != want {
		t.Errorf("Octets = %d below the limit, want exact %d", got, want)
	}
}

// DecodeAppend must decode byte-identically to Decode and append after
// existing records without allocating when capacity suffices.
func TestDecodeAppendMatchesDecode(t *testing.T) {
	b := mkDatagram(t, 42, 17, 3)
	hdr1, recs1, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	prefix := Record{SrcIP: 999}
	hdr2, recs2, err := DecodeAppend([]Record{prefix}, b)
	if err != nil {
		t.Fatal(err)
	}
	if hdr1 != hdr2 {
		t.Fatalf("headers differ: %+v vs %+v", hdr1, hdr2)
	}
	if len(recs2) != len(recs1)+1 || recs2[0] != prefix {
		t.Fatalf("DecodeAppend did not append: len=%d first=%+v", len(recs2), recs2[0])
	}
	for i := range recs1 {
		if recs2[i+1] != recs1[i] {
			t.Fatalf("record %d differs", i)
		}
	}

	// Error cases leave dst unchanged.
	dst := []Record{prefix}
	_, dst, err = DecodeAppend(dst, b[:HeaderLen+3]) // truncated records
	if err == nil || len(dst) != 1 {
		t.Fatalf("truncated datagram: err=%v len(dst)=%d", err, len(dst))
	}

	// Steady state is allocation-free with a warm buffer.
	buf := make([]Record, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		_, out, err := DecodeAppend(buf[:0], b)
		if err != nil || len(out) != 17 {
			t.Fatal("decode failed in alloc loop")
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeAppend allocates %v per datagram with a warm buffer", allocs)
	}
}
