package netflow

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/flow"
)

// IPFIX (RFC 7011) support: a minimal template-based exporter/decoder for
// the same 5-tuple + counters record the v5 path carries. Unlike v5, IPFIX
// is self-describing: the exporter announces a template describing the data
// record layout, and the decoder keeps a template cache per observation
// domain.

// IPFIXVersion is the version number in every IPFIX message header.
const IPFIXVersion = 10

// IPFIX wire constants.
const (
	ipfixHeaderLen    = 16
	ipfixSetHeaderLen = 4
	// IPFIXTemplateSetID is the set ID reserved for template sets.
	IPFIXTemplateSetID = 2
	// IPFIXFlowTemplateID is the template ID this package uses for its
	// flow record template (must be >= 256).
	IPFIXFlowTemplateID = 256
)

// IANA information element IDs used by the flow template.
const (
	ieOctetDeltaCount  = 1
	iePacketDeltaCount = 2
	ieProtocol         = 4
	ieSrcPort          = 7
	ieSrcAddr          = 8
	ieDstPort          = 11
	ieDstAddr          = 12
)

// ipfixField is one (element ID, length) template entry.
type ipfixField struct {
	id  uint16
	len uint16
}

// flowTemplate describes the data record: 5-tuple plus packet and octet
// counters (29 bytes per record).
var flowTemplate = []ipfixField{
	{ieSrcAddr, 4},
	{ieDstAddr, 4},
	{ieSrcPort, 2},
	{ieDstPort, 2},
	{ieProtocol, 1},
	{iePacketDeltaCount, 8},
	{ieOctetDeltaCount, 8},
}

const flowRecordLen = 4 + 4 + 2 + 2 + 1 + 8 + 8

// IPFIXRecord is a decoded IPFIX flow record.
type IPFIXRecord struct {
	Key     flow.Key
	Packets uint64
	Octets  uint64
}

// EncodeIPFIXTemplate appends an IPFIX message carrying the flow template
// to dst. Decoders must see it before any data message.
func EncodeIPFIXTemplate(dst []byte, exportTime uint32, seq, domain uint32) []byte {
	setLen := ipfixSetHeaderLen + 4 + 4*len(flowTemplate)
	msgLen := ipfixHeaderLen + setLen
	dst = appendIPFIXHeader(dst, uint16(msgLen), exportTime, seq, domain)

	var b [4]byte
	binary.BigEndian.PutUint16(b[0:], IPFIXTemplateSetID)
	binary.BigEndian.PutUint16(b[2:], uint16(setLen))
	dst = append(dst, b[:4]...)
	binary.BigEndian.PutUint16(b[0:], IPFIXFlowTemplateID)
	binary.BigEndian.PutUint16(b[2:], uint16(len(flowTemplate)))
	dst = append(dst, b[:4]...)
	for _, f := range flowTemplate {
		binary.BigEndian.PutUint16(b[0:], f.id)
		binary.BigEndian.PutUint16(b[2:], f.len)
		dst = append(dst, b[:4]...)
	}
	return dst
}

// EncodeIPFIXData appends an IPFIX data message carrying recs to dst.
func EncodeIPFIXData(dst []byte, recs []IPFIXRecord, exportTime uint32, seq, domain uint32) ([]byte, error) {
	setLen := ipfixSetHeaderLen + flowRecordLen*len(recs)
	msgLen := ipfixHeaderLen + setLen
	if msgLen > 0xFFFF {
		return dst, fmt.Errorf("netflow: %d IPFIX records exceed the 64 KiB message limit", len(recs))
	}
	dst = appendIPFIXHeader(dst, uint16(msgLen), exportTime, seq, domain)

	var b [8]byte
	binary.BigEndian.PutUint16(b[0:], IPFIXFlowTemplateID)
	binary.BigEndian.PutUint16(b[2:], uint16(setLen))
	dst = append(dst, b[:4]...)
	for _, r := range recs {
		binary.BigEndian.PutUint32(b[0:], r.Key.SrcIP)
		dst = append(dst, b[:4]...)
		binary.BigEndian.PutUint32(b[0:], r.Key.DstIP)
		dst = append(dst, b[:4]...)
		binary.BigEndian.PutUint16(b[0:], r.Key.SrcPort)
		dst = append(dst, b[:2]...)
		binary.BigEndian.PutUint16(b[0:], r.Key.DstPort)
		dst = append(dst, b[:2]...)
		dst = append(dst, r.Key.Proto)
		binary.BigEndian.PutUint64(b[0:], r.Packets)
		dst = append(dst, b[:8]...)
		binary.BigEndian.PutUint64(b[0:], r.Octets)
		dst = append(dst, b[:8]...)
	}
	return dst, nil
}

func appendIPFIXHeader(dst []byte, length uint16, exportTime uint32, seq, domain uint32) []byte {
	var h [ipfixHeaderLen]byte
	binary.BigEndian.PutUint16(h[0:], IPFIXVersion)
	binary.BigEndian.PutUint16(h[2:], length)
	binary.BigEndian.PutUint32(h[4:], exportTime)
	binary.BigEndian.PutUint32(h[8:], seq)
	binary.BigEndian.PutUint32(h[12:], domain)
	return append(dst, h[:]...)
}

// IPFIXDecoder decodes IPFIX messages, caching templates per observation
// domain as RFC 7011 requires.
type IPFIXDecoder struct {
	// templates[domain][templateID] = field list
	templates map[uint32]map[uint16][]ipfixField
}

// NewIPFIXDecoder returns a decoder with an empty template cache.
func NewIPFIXDecoder() *IPFIXDecoder {
	return &IPFIXDecoder{templates: make(map[uint32]map[uint16][]ipfixField)}
}

// Decode parses one IPFIX message, returning any flow records carried by
// data sets whose template is known. Template sets update the cache and
// yield no records.
func (d *IPFIXDecoder) Decode(msg []byte) ([]IPFIXRecord, error) {
	if len(msg) < ipfixHeaderLen {
		return nil, fmt.Errorf("netflow: IPFIX message of %d bytes is shorter than the header", len(msg))
	}
	if v := binary.BigEndian.Uint16(msg[0:]); v != IPFIXVersion {
		return nil, fmt.Errorf("netflow: unsupported IPFIX version %d", v)
	}
	msgLen := int(binary.BigEndian.Uint16(msg[2:]))
	if msgLen < ipfixHeaderLen || msgLen > len(msg) {
		return nil, fmt.Errorf("netflow: bad IPFIX message length %d (have %d bytes)", msgLen, len(msg))
	}
	domain := binary.BigEndian.Uint32(msg[12:])

	var out []IPFIXRecord
	body := msg[ipfixHeaderLen:msgLen]
	for len(body) > 0 {
		if len(body) < ipfixSetHeaderLen {
			return out, fmt.Errorf("netflow: truncated IPFIX set header")
		}
		setID := binary.BigEndian.Uint16(body[0:])
		setLen := int(binary.BigEndian.Uint16(body[2:]))
		if setLen < ipfixSetHeaderLen || setLen > len(body) {
			return out, fmt.Errorf("netflow: bad IPFIX set length %d", setLen)
		}
		content := body[ipfixSetHeaderLen:setLen]
		switch {
		case setID == IPFIXTemplateSetID:
			if err := d.parseTemplates(domain, content); err != nil {
				return out, err
			}
		case setID >= 256:
			recs, err := d.parseData(domain, setID, content)
			if err != nil {
				return out, err
			}
			out = append(out, recs...)
		default:
			// Options templates and other reserved sets are skipped.
		}
		body = body[setLen:]
	}
	return out, nil
}

func (d *IPFIXDecoder) parseTemplates(domain uint32, b []byte) error {
	for len(b) >= 4 {
		id := binary.BigEndian.Uint16(b[0:])
		count := int(binary.BigEndian.Uint16(b[2:]))
		b = b[4:]
		if len(b) < 4*count {
			return fmt.Errorf("netflow: truncated IPFIX template %d", id)
		}
		fields := make([]ipfixField, count)
		for i := range fields {
			fields[i] = ipfixField{
				id:  binary.BigEndian.Uint16(b[4*i:]),
				len: binary.BigEndian.Uint16(b[4*i+2:]),
			}
		}
		b = b[4*count:]
		if d.templates[domain] == nil {
			d.templates[domain] = make(map[uint16][]ipfixField)
		}
		d.templates[domain][id] = fields
	}
	return nil
}

func (d *IPFIXDecoder) parseData(domain uint32, templateID uint16, b []byte) ([]IPFIXRecord, error) {
	fields, ok := d.templates[domain][templateID]
	if !ok {
		return nil, fmt.Errorf("netflow: data set for unknown IPFIX template %d (domain %d)", templateID, domain)
	}
	recLen := 0
	for _, f := range fields {
		recLen += int(f.len)
	}
	if recLen == 0 {
		return nil, fmt.Errorf("netflow: IPFIX template %d has zero-length records", templateID)
	}
	var out []IPFIXRecord
	for len(b) >= recLen {
		var r IPFIXRecord
		off := 0
		for _, f := range fields {
			v := b[off : off+int(f.len)]
			switch f.id {
			case ieSrcAddr:
				r.Key.SrcIP = binary.BigEndian.Uint32(v)
			case ieDstAddr:
				r.Key.DstIP = binary.BigEndian.Uint32(v)
			case ieSrcPort:
				r.Key.SrcPort = binary.BigEndian.Uint16(v)
			case ieDstPort:
				r.Key.DstPort = binary.BigEndian.Uint16(v)
			case ieProtocol:
				r.Key.Proto = v[0]
			case iePacketDeltaCount:
				r.Packets = beUint(v)
			case ieOctetDeltaCount:
				r.Octets = beUint(v)
			}
			off += int(f.len)
		}
		out = append(out, r)
		b = b[recLen:]
	}
	return out, nil
}

// beUint reads a big-endian unsigned integer of 1..8 bytes, the reduced-
// size encoding IPFIX permits.
func beUint(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// IPFIXExporter exports flow records as IPFIX messages, re-announcing the
// template every TemplateEvery messages (datagram transports lose packets,
// so periodic re-announcement is standard practice).
type IPFIXExporter struct {
	send          func(b []byte) error
	domain        uint32
	seq           uint32
	sinceTemplate int
	now           nowFunc
	buf           []byte

	// TemplateEvery controls template re-announcement (default 20 data
	// messages).
	TemplateEvery int
	// RecordsPerMessage bounds data message size (default 200 records,
	// comfortably under 64 KiB).
	RecordsPerMessage int
}

// NewIPFIXExporter builds an exporter for one observation domain.
func NewIPFIXExporter(send func(b []byte) error, domain uint32) *IPFIXExporter {
	return &IPFIXExporter{
		send:              send,
		domain:            domain,
		now:               time.Now,
		TemplateEvery:     20,
		RecordsPerMessage: 200,
	}
}

// Export sends recs, preceded by a template message when due.
func (e *IPFIXExporter) Export(recs []IPFIXRecord) error {
	ts := uint32(e.now().Unix())
	if e.sinceTemplate == 0 {
		e.buf = EncodeIPFIXTemplate(e.buf[:0], ts, e.seq, e.domain)
		if err := e.send(e.buf); err != nil {
			return fmt.Errorf("netflow: send IPFIX template: %w", err)
		}
	}
	for start := 0; start < len(recs); start += e.RecordsPerMessage {
		end := start + e.RecordsPerMessage
		if end > len(recs) {
			end = len(recs)
		}
		var err error
		e.buf, err = EncodeIPFIXData(e.buf[:0], recs[start:end], ts, e.seq, e.domain)
		if err != nil {
			return err
		}
		if err := e.send(e.buf); err != nil {
			return fmt.Errorf("netflow: send IPFIX data: %w", err)
		}
		e.seq += uint32(end - start)
		e.sinceTemplate++
		if e.sinceTemplate >= e.TemplateEvery {
			e.sinceTemplate = 0
		}
	}
	return nil
}
