package netflow

import (
	"bytes"
	"testing"
)

// The decoders must never panic or over-read, whatever bytes arrive from
// the network.

func FuzzDecodeV5(f *testing.F) {
	seed, err := Encode(nil, Header{FlowSequence: 3}, []Record{{SrcIP: 1, Packets: 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, err := Decode(data)
		if err != nil {
			return
		}
		if int(hdr.Count) != len(recs) {
			t.Fatalf("header count %d but %d records decoded", hdr.Count, len(recs))
		}
	})
}

func FuzzDecodeAppend(f *testing.F) {
	seed, err := Encode(nil, Header{FlowSequence: 3}, []Record{{SrcIP: 1, Packets: 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		prefix := Record{SrcIP: 0xdead}
		hdr, recs, err := DecodeAppend([]Record{prefix}, data)
		if err != nil {
			if len(recs) != 1 {
				t.Fatalf("error path modified dst: %d records", len(recs))
			}
			return
		}
		if len(recs) != 1+int(hdr.Count) {
			t.Fatalf("header count %d but %d records appended", hdr.Count, len(recs)-1)
		}
		if recs[0] != prefix {
			t.Fatal("DecodeAppend clobbered existing records")
		}
		// Must agree with Decode on the same bytes.
		dhdr, drecs, derr := Decode(data)
		if derr != nil || dhdr != hdr || len(drecs) != len(recs)-1 {
			t.Fatalf("Decode disagrees: %v %+v %d", derr, dhdr, len(drecs))
		}
		for i := range drecs {
			if drecs[i] != recs[i+1] {
				t.Fatalf("record %d disagrees with Decode", i)
			}
		}
	})
}

func FuzzDecodeIPFIX(f *testing.F) {
	tmpl := EncodeIPFIXTemplate(nil, 1, 2, 3)
	data, err := EncodeIPFIXData(nil, []IPFIXRecord{{Packets: 9}}, 1, 2, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tmpl)
	f.Add(data)
	f.Add(append(append([]byte{}, tmpl...), data...))
	f.Fuzz(func(t *testing.T, msg []byte) {
		d := NewIPFIXDecoder()
		_, _ = d.Decode(msg) // must not panic
		// A second message against the (possibly poisoned) template cache
		// must not panic either.
		_, _ = d.Decode(msg)
	})
}

func FuzzDecodeV9(f *testing.F) {
	tmpl := EncodeV9Template(nil, 1, 2, 3, 4)
	data, err := EncodeV9Data(nil, []IPFIXRecord{{Octets: 7}}, 1, 2, 3, 4)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tmpl)
	f.Add(data)
	f.Fuzz(func(t *testing.T, msg []byte) {
		d := NewV9Decoder()
		_, _ = d.Decode(msg)
		_, _ = d.Decode(msg)
	})
}

func FuzzCollectorIngest(f *testing.F) {
	seed, err := Encode(nil, Header{}, []Record{{SrcIP: 5}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCollector()
		_ = c.Ingest(data)
		_ = c.Ingest(data)
		if c.Count() != len(c.Records()) {
			t.Fatal("Count disagrees with Records")
		}
	})
}
