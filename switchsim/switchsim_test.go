package switchsim

import (
	"testing"

	"repro/flow"
	"repro/flowmon"
	"repro/trace"
)

func TestCostModelOrdering(t *testing.T) {
	m := DefaultCostModel()
	cheap := flow.OpStats{Packets: 100, Hashes: 100, MemAccesses: 200}
	costly := flow.OpStats{Packets: 100, Hashes: 700, MemAccesses: 1100}
	if m.ThroughputKpps(cheap) <= m.ThroughputKpps(costly) {
		t.Error("cheaper per-packet work should yield higher throughput")
	}
	if got := m.ThroughputKpps(flow.OpStats{}); got != m.BaseKpps {
		t.Errorf("no measurement load should run at base rate, got %v", got)
	}
}

func TestCostModelAnchors(t *testing.T) {
	// The model should land a typical 4-hash algorithm near the paper's
	// ~5 Kpps and FlowRadar's 7-hash profile near ~3 Kpps.
	m := DefaultCostModel()
	typical := m.ThroughputKpps(flow.OpStats{Packets: 1, Hashes: 4, MemAccesses: 5})
	if typical < 4 || typical > 8 {
		t.Errorf("typical algorithm modeled at %.1f Kpps, want ~5", typical)
	}
	radar := m.ThroughputKpps(flow.OpStats{Packets: 1, Hashes: 7, MemAccesses: 11})
	if radar < 2 || radar > 4 {
		t.Errorf("FlowRadar-like profile modeled at %.1f Kpps, want ~3", radar)
	}
	if radar >= typical {
		t.Error("FlowRadar profile should be slower than typical")
	}
}

func TestRunEmptyStream(t *testing.T) {
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(rec, nil, DefaultCostModel()); err == nil {
		t.Error("Run accepted empty stream")
	}
}

func TestRunFig11Shape(t *testing.T) {
	// FlowRadar must do the most hashing and memory work and therefore get
	// the lowest modeled throughput; the other three stay within the 4-hash
	// envelope (Fig. 11's shape).
	tr, err := trace.Generate(trace.CAIDA, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(11)

	results := make(map[flowmon.Algorithm]Result)
	for _, a := range flowmon.All() {
		rec, err := flowmon.New(a, flowmon.Config{MemoryBytes: 64 << 10, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(rec, pkts, DefaultCostModel())
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops.Packets != uint64(len(pkts)) {
			t.Fatalf("%v processed %d packets, want %d", a, res.Ops.Packets, len(pkts))
		}
		results[a] = res
	}

	radar := results[flowmon.AlgorithmFlowRadar]
	if got := radar.Ops.HashesPerPacket(); got != 7 {
		t.Errorf("FlowRadar hashes/packet = %.2f, want 7", got)
	}
	for _, a := range []flowmon.Algorithm{
		flowmon.AlgorithmHashFlow, flowmon.AlgorithmHashPipe, flowmon.AlgorithmElasticSketch,
	} {
		r := results[a]
		if hp := r.Ops.HashesPerPacket(); hp > 4 {
			t.Errorf("%v hashes/packet = %.2f, want <= 4", a, hp)
		}
		if r.ModeledKpps <= radar.ModeledKpps {
			t.Errorf("%v modeled %.2f Kpps, should beat FlowRadar's %.2f",
				a, r.ModeledKpps, radar.ModeledKpps)
		}
		if r.Ops.MemAccessesPerPacket() >= radar.Ops.MemAccessesPerPacket() {
			t.Errorf("%v mem accesses %.2f, should be below FlowRadar's %.2f",
				a, r.Ops.MemAccessesPerPacket(), radar.Ops.MemAccessesPerPacket())
		}
	}
	for a, r := range results {
		if r.MeasuredMpps <= 0 {
			t.Errorf("%v measured throughput not positive", a)
		}
	}
}
