// Package switchsim models the P4 software-switch (bmv2) pipeline the paper
// used for its throughput experiment (Fig. 11).
//
// The paper measured three quantities per algorithm: forwarding throughput
// in Kpps (Fig. 11a), the average number of hash operations per packet
// (Fig. 11b) and the average number of memory accesses per packet
// (Fig. 11c). The latter two are exact properties of the algorithms and are
// counted directly by the recorders; the throughput of a software switch is
// dominated by per-packet work, so this package converts the operation
// counts into a modeled packet rate anchored at bmv2's ~20 Kpps baseline
// forwarding speed. Relative ordering between algorithms — the figure's
// point — follows directly from the counts.
package switchsim

import (
	"fmt"
	"time"

	"repro/flow"
)

// Recorder is the minimal surface switchsim needs from a measurement
// algorithm; flowmon.Recorder satisfies it.
type Recorder interface {
	Update(p flow.Packet)
	OpStats() flow.OpStats
}

// CostModel converts per-packet operation counts into a modeled forwarding
// rate: rate = BaseKpps / (1 + HashCost·hashes + MemCost·accesses).
type CostModel struct {
	// BaseKpps is the switch's forwarding rate with no measurement program
	// loaded. The paper reports bmv2 at ~20 Kpps.
	BaseKpps float64
	// HashCost is the per-hash slowdown relative to base per-packet work.
	HashCost float64
	// MemCost is the per-memory-access slowdown.
	MemCost float64
}

// DefaultCostModel anchors the model so that a typical 4-hash/5-access
// algorithm lands near the ~5 Kpps the paper measures, and FlowRadar's
// 7-hash/11-access profile lands near 3 Kpps.
func DefaultCostModel() CostModel {
	return CostModel{BaseKpps: 20, HashCost: 0.5, MemCost: 0.2}
}

// ThroughputKpps returns the modeled forwarding rate for a recorder whose
// cumulative operation counts are s.
func (c CostModel) ThroughputKpps(s flow.OpStats) float64 {
	return c.BaseKpps / (1 + c.HashCost*s.HashesPerPacket() + c.MemCost*s.MemAccessesPerPacket())
}

// Result is one row of the Fig. 11 experiment.
type Result struct {
	// Ops are the recorder's cumulative operation counts over the run.
	Ops flow.OpStats
	// ModeledKpps is the cost-model throughput (Fig. 11a analogue).
	ModeledKpps float64
	// MeasuredMpps is the real Go-implementation throughput in million
	// packets per second measured during the run.
	MeasuredMpps float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Run feeds every packet through the recorder, measuring both real and
// modeled throughput.
func Run(rec Recorder, pkts []flow.Packet, model CostModel) (Result, error) {
	if len(pkts) == 0 {
		return Result{}, fmt.Errorf("switchsim: empty packet stream")
	}
	before := rec.OpStats()
	start := time.Now()
	for _, p := range pkts {
		rec.Update(p)
	}
	elapsed := time.Since(start)
	after := rec.OpStats()

	ops := flow.OpStats{
		Packets:     after.Packets - before.Packets,
		Hashes:      after.Hashes - before.Hashes,
		MemAccesses: after.MemAccesses - before.MemAccesses,
	}
	res := Result{
		Ops:         ops,
		ModeledKpps: model.ThroughputKpps(ops),
		Elapsed:     elapsed,
	}
	if elapsed > 0 {
		res.MeasuredMpps = float64(len(pkts)) / elapsed.Seconds() / 1e6
	}
	return res, nil
}
