package flow

import "sort"

// Truth accumulates exact per-flow packet counts and serves as the ground
// truth against which approximate recorders are scored.
type Truth struct {
	counts map[Key]uint32
	pkts   uint64
}

// NewTruth returns an empty ground-truth accumulator. The hint is the
// expected number of distinct flows (0 is fine).
func NewTruth(hint int) *Truth {
	return &Truth{counts: make(map[Key]uint32, hint)}
}

// Observe counts one packet.
func (t *Truth) Observe(p Packet) {
	t.counts[p.Key]++
	t.pkts++
}

// ObserveAll counts every packet in pkts.
func (t *Truth) ObserveAll(pkts []Packet) {
	for _, p := range pkts {
		t.Observe(p)
	}
}

// Flows returns the number of distinct flows observed.
func (t *Truth) Flows() int { return len(t.counts) }

// Packets returns the total number of packets observed.
func (t *Truth) Packets() uint64 { return t.pkts }

// Count returns the exact packet count of a flow (0 if never seen).
func (t *Truth) Count(k Key) uint32 { return t.counts[k] }

// Contains reports whether the flow was observed at least once.
func (t *Truth) Contains(k Key) bool {
	_, ok := t.counts[k]
	return ok
}

// Records returns all exact flow records in unspecified order.
func (t *Truth) Records() []Record {
	out := make([]Record, 0, len(t.counts))
	for k, c := range t.counts {
		out = append(out, Record{Key: k, Count: c})
	}
	return out
}

// HeavyHitters returns the keys of all flows with at least threshold packets.
func (t *Truth) HeavyHitters(threshold uint32) []Key {
	var out []Key
	for k, c := range t.counts {
		if c >= threshold {
			out = append(out, k)
		}
	}
	return out
}

// TopK returns the k largest flows in descending count order. Ties are
// broken deterministically by key encoding so results are reproducible.
func (t *Truth) TopK(k int) []Record {
	recs := t.Records()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Count != recs[j].Count {
			return recs[i].Count > recs[j].Count
		}
		return lessKey(recs[i].Key, recs[j].Key)
	})
	if k < len(recs) {
		recs = recs[:k]
	}
	return recs
}

// MaxCount returns the size of the largest flow (0 when empty).
func (t *Truth) MaxCount() uint32 {
	var m uint32
	for _, c := range t.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// MeanCount returns the average flow size (0 when empty).
func (t *Truth) MeanCount() float64 {
	if len(t.counts) == 0 {
		return 0
	}
	return float64(t.pkts) / float64(len(t.counts))
}

func lessKey(a, b Key) bool {
	switch {
	case a.SrcIP != b.SrcIP:
		return a.SrcIP < b.SrcIP
	case a.DstIP != b.DstIP:
		return a.DstIP < b.DstIP
	case a.SrcPort != b.SrcPort:
		return a.SrcPort < b.SrcPort
	case a.DstPort != b.DstPort:
		return a.DstPort < b.DstPort
	default:
		return a.Proto < b.Proto
	}
}
