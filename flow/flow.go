// Package flow defines the basic vocabulary of flow record collection:
// flow keys, packets, flow records and ground-truth accumulation.
//
// A flow is identified by the classic 104-bit 5-tuple (source IP,
// destination IP, source port, destination port, protocol), matching the
// flow ID the HashFlow paper uses throughout its evaluation. All measurement
// algorithms in this repository consume flow.Packet values and emit
// flow.Record values.
package flow

import (
	"fmt"
	"net/netip"
)

// KeyBytes is the canonical encoded size of a Key: 104 bits = 13 bytes.
const KeyBytes = 13

// Key is a 104-bit flow identifier: the IPv4 5-tuple.
//
// Key is comparable and can be used directly as a map key.
type Key struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Words packs the key into two 64-bit words (104 significant bits).
// The packing is injective, so hashing the two words is equivalent to
// hashing the canonical 13-byte encoding.
func (k Key) Words() (uint64, uint64) {
	w1 := uint64(k.SrcIP)<<32 | uint64(k.DstIP)
	w2 := uint64(k.SrcPort)<<24 | uint64(k.DstPort)<<8 | uint64(k.Proto)
	return w1, w2
}

// AppendBytes appends the canonical 13-byte big-endian encoding of the key
// to dst and returns the extended slice.
func (k Key) AppendBytes(dst []byte) []byte {
	return append(dst,
		byte(k.SrcIP>>24), byte(k.SrcIP>>16), byte(k.SrcIP>>8), byte(k.SrcIP),
		byte(k.DstIP>>24), byte(k.DstIP>>16), byte(k.DstIP>>8), byte(k.DstIP),
		byte(k.SrcPort>>8), byte(k.SrcPort),
		byte(k.DstPort>>8), byte(k.DstPort),
		k.Proto,
	)
}

// KeyFromBytes decodes a key from its canonical 13-byte encoding.
// It returns an error if b is not exactly KeyBytes long.
func KeyFromBytes(b []byte) (Key, error) {
	if len(b) != KeyBytes {
		return Key{}, fmt.Errorf("flow: key must be %d bytes, got %d", KeyBytes, len(b))
	}
	return Key{
		SrcIP:   uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]),
		DstIP:   uint32(b[4])<<24 | uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
		SrcPort: uint16(b[8])<<8 | uint16(b[9]),
		DstPort: uint16(b[10])<<8 | uint16(b[11]),
		Proto:   b[12],
	}, nil
}

// XOR returns the field-wise exclusive-or of two keys. FlowRadar's coded
// flow set relies on XOR being an involution: a ^ b ^ b == a.
func (k Key) XOR(o Key) Key {
	return Key{
		SrcIP:   k.SrcIP ^ o.SrcIP,
		DstIP:   k.DstIP ^ o.DstIP,
		SrcPort: k.SrcPort ^ o.SrcPort,
		DstPort: k.DstPort ^ o.DstPort,
		Proto:   k.Proto ^ o.Proto,
	}
}

// IsZero reports whether the key is the all-zero key.
func (k Key) IsZero() bool {
	return k == Key{}
}

// IPString renders a big-endian packed IPv4 address as a dotted quad,
// the encoding Key carries its addresses in.
func IPString(ip uint32) string {
	return netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}).String()
}

// String renders the key as "src:sport -> dst:dport/proto".
func (k Key) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d/%d", IPString(k.SrcIP), k.SrcPort, IPString(k.DstIP), k.DstPort, k.Proto)
}

// Packet is one packet of a flow as seen by a measurement point.
type Packet struct {
	Key Key
	// Size is the packet length in bytes. The HashFlow evaluation counts
	// packets, not bytes, but NetFlow export and the pcap codec carry sizes.
	Size uint16
}

// Record is a flow record: the key and the number of packets attributed to it.
type Record struct {
	Key   Key
	Count uint32
}

// CompareKeys orders keys by their packed two-word encoding (Words) and
// returns -1, 0 or +1. This is the canonical key order of the export
// pipeline: shard chunks, recordstore epochs and netwide sorted-view
// merges all sort by it, so they interoperate without re-sorting.
func CompareKeys(a, b Key) int {
	a1, a2 := a.Words()
	b1, b2 := b.Words()
	switch {
	case a1 != b1:
		if a1 < b1 {
			return -1
		}
		return 1
	case a2 != b2:
		if a2 < b2 {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// OpStats aggregates the per-packet operation counts that Fig. 11 of the
// paper reports: hash computations and memory (bucket/cell/bit) accesses.
type OpStats struct {
	Packets     uint64
	Hashes      uint64
	MemAccesses uint64
}

// HashesPerPacket returns the average number of hash computations per
// processed packet, or 0 if no packets were processed.
func (s OpStats) HashesPerPacket() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.Hashes) / float64(s.Packets)
}

// MemAccessesPerPacket returns the average number of memory accesses per
// processed packet, or 0 if no packets were processed.
func (s OpStats) MemAccessesPerPacket() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.MemAccesses) / float64(s.Packets)
}

// Add returns the element-wise sum of two OpStats.
func (s OpStats) Add(o OpStats) OpStats {
	return OpStats{
		Packets:     s.Packets + o.Packets,
		Hashes:      s.Hashes + o.Hashes,
		MemAccesses: s.MemAccesses + o.MemAccesses,
	}
}
