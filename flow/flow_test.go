package flow

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func randKey(rng *rand.Rand) Key {
	return Key{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Uint32()),
		DstPort: uint16(rng.Uint32()),
		Proto:   uint8(rng.Uint32()),
	}
}

func TestKeyBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		k := randKey(rng)
		enc := k.AppendBytes(nil)
		if len(enc) != KeyBytes {
			t.Fatalf("encoded length = %d, want %d", len(enc), KeyBytes)
		}
		dec, err := KeyFromBytes(enc)
		if err != nil {
			t.Fatalf("KeyFromBytes: %v", err)
		}
		if dec != k {
			t.Fatalf("round trip mismatch: %+v != %+v", dec, k)
		}
	}
}

func TestKeyFromBytesRejectsWrongLength(t *testing.T) {
	for _, n := range []int{0, 1, 12, 14, 26} {
		if _, err := KeyFromBytes(make([]byte, n)); err == nil {
			t.Errorf("KeyFromBytes accepted %d bytes", n)
		}
	}
}

func TestKeyWordsInjective(t *testing.T) {
	// Two keys with equal packed words must be the same key.
	rng := rand.New(rand.NewPCG(3, 4))
	seen := make(map[[2]uint64]Key)
	for i := 0; i < 100000; i++ {
		k := randKey(rng)
		w1, w2 := k.Words()
		if prev, ok := seen[[2]uint64{w1, w2}]; ok && prev != k {
			t.Fatalf("word collision between distinct keys %v and %v", prev, k)
		}
		seen[[2]uint64{w1, w2}] = k
	}
}

func TestKeyXORInvolution(t *testing.T) {
	f := func(a, b Key) bool {
		return a.XOR(b).XOR(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyXORZero(t *testing.T) {
	f := func(a Key) bool {
		return a.XOR(a).IsZero() && a.XOR(Key{}) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{SrcIP: 0x0A000001, DstIP: 0xC0A80101, SrcPort: 1234, DstPort: 80, Proto: 6}
	want := "10.0.0.1:1234 -> 192.168.1.1:80/6"
	if got := k.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestOpStats(t *testing.T) {
	var zero OpStats
	if zero.HashesPerPacket() != 0 || zero.MemAccessesPerPacket() != 0 {
		t.Error("zero OpStats should report 0 averages")
	}
	s := OpStats{Packets: 4, Hashes: 12, MemAccesses: 20}
	if got := s.HashesPerPacket(); got != 3 {
		t.Errorf("HashesPerPacket = %v, want 3", got)
	}
	if got := s.MemAccessesPerPacket(); got != 5 {
		t.Errorf("MemAccessesPerPacket = %v, want 5", got)
	}
	sum := s.Add(OpStats{Packets: 1, Hashes: 2, MemAccesses: 3})
	want := OpStats{Packets: 5, Hashes: 14, MemAccesses: 23}
	if sum != want {
		t.Errorf("Add = %+v, want %+v", sum, want)
	}
}
