package flow

import (
	"math/rand/v2"
	"testing"
)

func TestTruthCounts(t *testing.T) {
	tr := NewTruth(0)
	k1 := Key{SrcIP: 1}
	k2 := Key{SrcIP: 2}
	for i := 0; i < 5; i++ {
		tr.Observe(Packet{Key: k1})
	}
	tr.Observe(Packet{Key: k2})

	if got := tr.Flows(); got != 2 {
		t.Errorf("Flows = %d, want 2", got)
	}
	if got := tr.Packets(); got != 6 {
		t.Errorf("Packets = %d, want 6", got)
	}
	if got := tr.Count(k1); got != 5 {
		t.Errorf("Count(k1) = %d, want 5", got)
	}
	if got := tr.Count(Key{SrcIP: 3}); got != 0 {
		t.Errorf("Count(unknown) = %d, want 0", got)
	}
	if !tr.Contains(k2) || tr.Contains(Key{SrcIP: 9}) {
		t.Error("Contains misbehaves")
	}
	if got := tr.MaxCount(); got != 5 {
		t.Errorf("MaxCount = %d, want 5", got)
	}
	if got := tr.MeanCount(); got != 3 {
		t.Errorf("MeanCount = %v, want 3", got)
	}
}

func TestTruthHeavyHitters(t *testing.T) {
	tr := NewTruth(0)
	counts := map[Key]int{
		{SrcIP: 1}: 10,
		{SrcIP: 2}: 5,
		{SrcIP: 3}: 1,
	}
	for k, c := range counts {
		for i := 0; i < c; i++ {
			tr.Observe(Packet{Key: k})
		}
	}
	hh := tr.HeavyHitters(5)
	if len(hh) != 2 {
		t.Fatalf("HeavyHitters(5) = %d flows, want 2", len(hh))
	}
	for _, k := range hh {
		if tr.Count(k) < 5 {
			t.Errorf("reported non-heavy flow %v", k)
		}
	}
}

func TestTruthTopK(t *testing.T) {
	tr := NewTruth(0)
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 1; i <= 50; i++ {
		k := randKey(rng)
		for j := 0; j < i; j++ {
			tr.Observe(Packet{Key: k})
		}
	}
	top := tr.TopK(10)
	if len(top) != 10 {
		t.Fatalf("TopK(10) returned %d records", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Errorf("TopK not descending at %d: %d > %d", i, top[i].Count, top[i-1].Count)
		}
	}
	if top[0].Count != 50 {
		t.Errorf("largest flow = %d, want 50", top[0].Count)
	}
	// TopK larger than population returns everything.
	if got := len(tr.TopK(1000)); got != 50 {
		t.Errorf("TopK(1000) = %d records, want 50", got)
	}
}

func TestTruthRecordsMatchCounts(t *testing.T) {
	tr := NewTruth(0)
	rng := rand.New(rand.NewPCG(9, 10))
	want := make(map[Key]uint32)
	for i := 0; i < 1000; i++ {
		k := randKey(rng)
		n := uint32(rng.IntN(20) + 1)
		want[k] += n
		for j := uint32(0); j < n; j++ {
			tr.Observe(Packet{Key: k})
		}
	}
	recs := tr.Records()
	if len(recs) != len(want) {
		t.Fatalf("Records() = %d, want %d", len(recs), len(want))
	}
	for _, r := range recs {
		if want[r.Key] != r.Count {
			t.Errorf("record %v count %d, want %d", r.Key, r.Count, want[r.Key])
		}
	}
}

func TestTruthObserveAll(t *testing.T) {
	tr := NewTruth(0)
	pkts := []Packet{{Key: Key{SrcIP: 1}}, {Key: Key{SrcIP: 1}}, {Key: Key{SrcIP: 2}}}
	tr.ObserveAll(pkts)
	if tr.Packets() != 3 || tr.Flows() != 2 {
		t.Errorf("ObserveAll: packets=%d flows=%d, want 3/2", tr.Packets(), tr.Flows())
	}
}

func TestLessKeyTotalOrder(t *testing.T) {
	keys := []Key{
		{SrcIP: 1}, {SrcIP: 2},
		{SrcIP: 1, DstIP: 1}, {SrcIP: 1, SrcPort: 1},
		{SrcIP: 1, DstPort: 1}, {SrcIP: 1, Proto: 1},
	}
	for _, a := range keys {
		if lessKey(a, a) {
			t.Errorf("lessKey(%v, %v) should be false", a, a)
		}
		for _, b := range keys {
			if a != b && lessKey(a, b) == lessKey(b, a) {
				t.Errorf("lessKey not antisymmetric for %v, %v", a, b)
			}
		}
	}
}
