package flow_test

import (
	"bytes"
	"testing"

	"repro/flow"
)

// FuzzKeyWords exercises the key codec round-trips that the whole data
// path leans on: bytes -> Key -> bytes must be the identity, the two-word
// packing must stay within 104 significant bits and remain injective, and
// XOR must behave as the involution FlowRadar's coded flow set requires.
func FuzzKeyWords(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, flow.KeyBytes))
	f.Add([]byte{0xC0, 0xA8, 0x00, 0x01, 0x0A, 0x00, 0x00, 0x02, 0x1F, 0x90, 0x00, 0x50, 0x06})
	f.Add(bytes.Repeat([]byte{0xFF}, flow.KeyBytes))

	f.Fuzz(func(t *testing.T, b []byte) {
		k, err := flow.KeyFromBytes(b)
		if len(b) != flow.KeyBytes {
			if err == nil {
				t.Fatalf("KeyFromBytes accepted %d bytes", len(b))
			}
			return
		}
		if err != nil {
			t.Fatalf("KeyFromBytes rejected %d bytes: %v", len(b), err)
		}

		enc := k.AppendBytes(nil)
		if !bytes.Equal(enc, b) {
			t.Fatalf("encode round trip: got %x, want %x", enc, b)
		}
		back, err := flow.KeyFromBytes(enc)
		if err != nil || back != k {
			t.Fatalf("decode round trip: got %+v (%v), want %+v", back, err, k)
		}

		w1, w2 := k.Words()
		if w2>>40 != 0 {
			t.Fatalf("Words packing exceeds 104 bits: w2 = %#x", w2)
		}
		unpacked := flow.Key{
			SrcIP:   uint32(w1 >> 32),
			DstIP:   uint32(w1),
			SrcPort: uint16(w2 >> 24),
			DstPort: uint16(w2 >> 8),
			Proto:   uint8(w2),
		}
		if unpacked != k {
			t.Fatalf("Words packing not injective: %+v unpacked to %+v", k, unpacked)
		}

		if !k.XOR(k).IsZero() {
			t.Fatalf("k XOR k != 0 for %+v", k)
		}
		other := flow.Key{SrcIP: 0xDEADBEEF, DstIP: 0x01020304, SrcPort: 443, DstPort: 51234, Proto: 17}
		if k.XOR(other).XOR(other) != k {
			t.Fatalf("XOR not an involution for %+v", k)
		}
	})
}
