package detect

import (
	"testing"
	"time"

	"repro/flow"
)

// FuzzObserve hammers the detector with arbitrary record streams split
// across two epochs: whatever the bytes decode to, evaluation must not
// panic, every raised alert must be well formed, and the query-side
// snapshots must stay consistent with the evaluation count. This is the
// drain-worker robustness contract — a hostile or corrupt epoch buffer
// may produce nonsense alerts, but never a dead rotation.
func FuzzObserve(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint16(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}, uint16(300), uint16(2))
	f.Add(make([]byte, 17*40), uint16(1), uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, minDelta uint16, fanout uint16) {
		d, err := NewDetector(Config{
			ChangeMinDelta:  uint32(minDelta),
			FanoutThreshold: int(fanout%512) + 1,
			AlertLog:        64,
			ChangeLog:       4,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Decode records: 17 bytes each (13 key + 4 count), the tail
		// ignored. Duplicate keys and arbitrary counts are expected.
		var recs []flow.Record
		for len(data) >= 17 {
			key, err := flow.KeyFromBytes(data[:13])
			if err != nil {
				t.Fatal(err)
			}
			count := uint32(data[13])<<24 | uint32(data[14])<<16 | uint32(data[15])<<8 | uint32(data[16])
			recs = append(recs, flow.Record{Key: key, Count: count})
			data = data[17:]
		}
		half := len(recs) / 2
		ts := time.Unix(1700000000, 0)
		for e, ep := range [][]flow.Record{recs[:half], recs[half:], nil} {
			for _, a := range d.Observe(e, ts, ep) {
				if a.Epoch != e {
					t.Fatalf("alert epoch %d from epoch %d", a.Epoch, e)
				}
				if _, err := ParseKind(a.Kind.String()); err != nil {
					t.Fatalf("alert kind invalid: %+v", a)
				}
				if _, err := ParseSeverity(a.Severity.String()); err != nil {
					t.Fatalf("alert severity invalid: %+v", a)
				}
				if a.Kind == KindAnomaly && a.Metric == "" {
					t.Fatalf("anomaly without metric: %+v", a)
				}
			}
		}
		if got := d.Epochs(); got != 3 {
			t.Fatalf("Epochs() = %d after 3 evaluations", got)
		}
		if alerts := d.AppendAlerts(nil); len(alerts) > 64 {
			t.Fatalf("ring exceeded its capacity: %d", len(alerts))
		}
		for _, s := range d.AppendSummaries(nil) {
			for _, c := range s.Changes {
				if c.Abs() < uint32(minDelta) {
					t.Fatalf("summary change below threshold: %+v", c)
				}
			}
		}
	})
}
