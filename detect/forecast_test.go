package detect

import (
	"testing"

	"repro/flow"
)

// rampDetector builds a forecast-only detector with a low admission
// floor so small test flows are modelled.
func rampDetector(t *testing.T, threshold float64) *Detector {
	t.Helper()
	return mustDetector(t, Config{
		Stages:            StageForecast,
		ForecastMinCount:  10,
		ForecastThreshold: threshold,
	})
}

// TestForecastSlowRamp: a flow ramping up below the heavy-change delta
// threshold every epoch still alerts once its accumulated drift from the
// forecast crosses the CUSUM threshold — and the same trajectory never
// trips the heavy-change pass it slips past.
func TestForecastSlowRamp(t *testing.T) {
	full := mustDetector(t, Config{ForecastMinCount: 10, ChangeMinDelta: 1024})
	var forecastAlerts, changeAlerts int
	count := uint32(500)
	for e := 0; e < 20; e++ {
		if e >= 5 {
			count += 600 // per-epoch delta stays below ChangeMinDelta
		}
		recs := []flow.Record{
			{Key: key(1), Count: count},
			{Key: key(2), Count: 400}, // stable control flow
		}
		for _, a := range full.Observe(e, ts(e), recs) {
			switch a.Kind {
			case KindForecast:
				if a.Key != key(1) {
					t.Fatalf("forecast alert on control key: %+v", a)
				}
				forecastAlerts++
			case KindHeavyChange:
				changeAlerts++
			}
		}
	}
	if forecastAlerts == 0 {
		t.Error("slow ramp never raised a forecast alert")
	}
	if changeAlerts != 0 {
		t.Errorf("slow ramp raised %d heavy-change alerts (delta below threshold)", changeAlerts)
	}
}

// TestForecastStableTrafficQuiet: jittering but stationary flows stay
// inside the CUSUM slack and never alert.
func TestForecastStableTrafficQuiet(t *testing.T) {
	d := rampDetector(t, 1024)
	for e := 0; e < 40; e++ {
		jitter := uint32(e % 7 * 10) // bounded well under the slack
		alerts := d.Observe(e, ts(e), []flow.Record{
			{Key: key(1), Count: 1000 + jitter},
			{Key: key(2), Count: 300 - jitter/2},
		})
		if len(alerts) != 0 {
			t.Fatalf("epoch %d: stable traffic alerted: %v", e, alerts)
		}
	}
	if got := d.ForecastTracked(); got != 2 {
		t.Errorf("tracked %d keys, want 2", got)
	}
}

// TestForecastAdmissionFloor: keys below ForecastMinCount never occupy
// table slots.
func TestForecastAdmissionFloor(t *testing.T) {
	d := mustDetector(t, Config{Stages: StageForecast, ForecastMinCount: 100})
	recs := []flow.Record{
		{Key: key(1), Count: 5},   // mouse, not admitted
		{Key: key(2), Count: 100}, // at the floor, admitted
	}
	d.Observe(0, ts(0), recs)
	if got := d.ForecastTracked(); got != 1 {
		t.Errorf("tracked %d keys, want 1 (floor 100)", got)
	}
}

// TestForecastRearm: after an alert the CUSUM resets, so a flow that
// jumps once and then stabilizes does not keep alerting forever.
func TestForecastRearm(t *testing.T) {
	d := rampDetector(t, 500)
	d.Observe(0, ts(0), []flow.Record{{Key: key(1), Count: 1000}})
	alerts := d.Observe(1, ts(1), []flow.Record{{Key: key(1), Count: 3000}})
	if len(alerts) != 1 || alerts[0].Kind != KindForecast {
		t.Fatalf("jump: got %v", alerts)
	}
	// The alert restarts the model at the observed level, so the
	// stabilized flow goes quiet almost immediately.
	quietBy := 2
	for e := 2; e < 2+quietBy+4; e++ {
		alerts = d.Observe(e, ts(e), []flow.Record{{Key: key(1), Count: 3000}})
		if e >= 2+quietBy && len(alerts) != 0 {
			t.Fatalf("epoch %d: stabilized flow still alerting: %v", e, alerts)
		}
	}
}

// TestForecastTableSweep: keys that stop appearing are reclaimed after
// the TTL, and the freed capacity admits new keys.
func TestForecastTableSweep(t *testing.T) {
	d := mustDetector(t, Config{
		Stages: StageForecast, ForecastMinCount: 10,
		ForecastCapacity: 4, ForecastTTL: 2,
	})
	recs := func(base, n int) []flow.Record {
		out := make([]flow.Record, n)
		for i := range out {
			out[i] = flow.Record{Key: key(base + i), Count: 500}
		}
		return out
	}
	d.Observe(0, ts(0), recs(0, 4))
	if got := d.ForecastTracked(); got != 4 {
		t.Fatalf("tracked %d, want 4", got)
	}
	// Capacity full: a fifth key cannot enter.
	d.Observe(1, ts(1), append(recs(0, 4), recs(100, 1)...))
	if got := d.ForecastTracked(); got != 4 {
		t.Fatalf("over-capacity admit: tracked %d, want 4", got)
	}
	// The original keys vanish; after TTL epochs their slots free up.
	for e := 2; e <= 6; e++ {
		d.Observe(e, ts(e), recs(100, 1))
	}
	if got := d.ForecastTracked(); got != 1 {
		t.Fatalf("after sweep: tracked %d, want 1", got)
	}
}

// TestForecastTableDeletion exercises the backward-shift delete against
// a dense probe cluster: surviving keys must stay reachable whatever the
// eviction order.
func TestForecastTableDeletion(t *testing.T) {
	tab := newForecastTable(32, 0.3, 0.1, 64, 512, 1, 1)
	for i := 0; i < 32; i++ {
		tab.observe(key(i), 100, 0)
	}
	if tab.Len() != 32 {
		t.Fatalf("inserted %d, want 32", tab.Len())
	}
	// Re-observe the even keys in epoch 3; the odd ones expire (TTL 1).
	for i := 0; i < 32; i += 2 {
		tab.observe(key(i), 100, 3)
	}
	tab.sweep(3)
	if tab.Len() != 16 {
		t.Fatalf("after sweep: %d entries, want 16", tab.Len())
	}
	// Every survivor must still resolve (tracked == true) and no ghost
	// may have survived.
	for i := 0; i < 32; i++ {
		_, _, tracked, _ := tab.observe(key(i), 100, 4)
		if want := i%2 == 0; tracked != want {
			t.Errorf("key %d tracked=%v, want %v", i, tracked, want)
		}
	}
}

// TestVictimFanIn: a destination hammered by many distinct sources
// alerts; a destination with as many flows from one source does not —
// the dst-keyed mirror of TestSuperspreader.
func TestVictimFanIn(t *testing.T) {
	d := mustDetector(t, Config{FanInThreshold: 64})
	var recs []flow.Record
	// Victim: one destination, 200 distinct sources.
	for i := 0; i < 200; i++ {
		recs = append(recs, flow.Record{
			Key:   flow.Key{SrcIP: 0x0B000000 | uint32(i), DstIP: 0x08080808, DstPort: 443, Proto: 6},
			Count: 1,
		})
	}
	// Busy server client-side: one source, 200 flows to one destination
	// across source ports — long dst run, a single source.
	for i := 0; i < 200; i++ {
		recs = append(recs, flow.Record{
			Key:   flow.Key{SrcIP: 0x0C0C0C0C, DstIP: 0x09090909, SrcPort: uint16(1024 + i), Proto: 6},
			Count: 3,
		})
	}
	alerts := d.Observe(0, ts(0), recs)
	var fanin []Alert
	for _, a := range alerts {
		if a.Kind == KindVictimFanIn {
			fanin = append(fanin, a)
		}
	}
	if len(fanin) != 1 {
		t.Fatalf("fan-in alerts: %v", fanin)
	}
	a := fanin[0]
	if a.Key.DstIP != 0x08080808 || a.Key.SrcIP != 0 {
		t.Errorf("flagged wrong destination: %+v", a.Key)
	}
	if a.Value < 180 || a.Value > 220 {
		t.Errorf("fan-in estimate %v far from 200", a.Value)
	}
}

// TestRingWraparound pins the ring's FIFO contract across several full
// wraps: appendAll returns exactly the last cap values oldest-first, and
// evictee points at the value the next push replaces.
func TestRingWraparound(t *testing.T) {
	r := newRing[int](3)
	if r.evictee() != nil {
		t.Fatal("empty ring has an evictee")
	}
	for v := 1; v <= 2; v++ {
		r.push(v)
	}
	if r.evictee() != nil {
		t.Fatal("partially filled ring has an evictee")
	}
	if got := r.appendAll(nil); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("pre-wrap contents %v", got)
	}
	// Push through 3 full wraps, checking the evictee before each
	// overwrite.
	for v := 3; v <= 11; v++ {
		if v > 3 {
			want := v - 3
			if e := r.evictee(); e == nil || *e != want {
				t.Fatalf("push %d: evictee %v, want %d", v, e, want)
			}
		}
		r.push(v)
	}
	got := r.appendAll(nil)
	if len(got) != 3 || got[0] != 9 || got[1] != 10 || got[2] != 11 {
		t.Fatalf("post-wrap contents %v, want [9 10 11]", got)
	}
	// appendAll appends, never overwrites.
	got = r.appendAll(got)
	if len(got) != 6 || got[3] != 9 {
		t.Fatalf("append-to-existing broke: %v", got)
	}
}
