package detect

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/flow"
)

// ckptTestConfig keeps every stage on with thresholds low enough that a
// deterministic workload exercises them all.
func ckptTestConfig() Config {
	return Config{
		ChangeMinDelta:    200,
		ChangeTopK:        8,
		FanoutThreshold:   16,
		FanInThreshold:    16,
		ForecastCapacity:  256,
		ForecastMinCount:  64,
		ForecastThreshold: 400,
		BaselineWindow:    8,
		BaselineWarmup:    4,
	}
}

// ckptEpoch builds a deterministic epoch: a few stable flows, one flow
// whose count wobbles with the epoch index, and a burst key that appears
// on a cycle so deltas, forecasts and baselines all get real input.
func ckptEpoch(epoch int) []flow.Record {
	recs := []flow.Record{
		{Key: flow.Key{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 40000, DstPort: 443, Proto: 6}, Count: 900},
		{Key: flow.Key{SrcIP: 0x0a000003, DstIP: 0x0a000004, SrcPort: 40001, DstPort: 53, Proto: 17}, Count: 300},
		{Key: flow.Key{SrcIP: 0x0a000005, DstIP: 0x0a000006, SrcPort: 40002, DstPort: 80, Proto: 6},
			Count: uint32(400 + 150*(epoch%3))},
	}
	if epoch%4 == 2 {
		recs = append(recs, flow.Record{
			Key:   flow.Key{SrcIP: 0x0a000007, DstIP: 0x0a000008, SrcPort: 40003, DstPort: 8080, Proto: 6},
			Count: 1200,
		})
	}
	return recs
}

func alertsEqual(a, b []Alert) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCheckpointRoundTripEquivalence is the core contract: a detector
// restored from a checkpoint must alert identically to the detector that
// wrote it, on every subsequent epoch.
func TestCheckpointRoundTripEquivalence(t *testing.T) {
	orig, err := NewDetector(ckptTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1700000000, 0)
	const upTo = 13
	for e := 0; e < upTo; e++ {
		orig.Observe(e, ts.Add(time.Duration(e)*time.Second), ckptEpoch(e))
	}

	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}
	restored, err := NewDetector(ckptTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	if restored.Epochs() != orig.Epochs() {
		t.Fatalf("restored detector reports %d epochs, original %d", restored.Epochs(), orig.Epochs())
	}
	if restored.ForecastTracked() != orig.ForecastTracked() {
		t.Fatalf("restored forecast tracks %d keys, original %d",
			restored.ForecastTracked(), orig.ForecastTracked())
	}

	for e := upTo; e < upTo+20; e++ {
		at := ts.Add(time.Duration(e) * time.Second)
		recs := ckptEpoch(e)
		a := append([]Alert(nil), orig.Observe(e, at, recs)...)
		b := append([]Alert(nil), restored.Observe(e, at, recs)...)
		if !alertsEqual(a, b) {
			t.Fatalf("epoch %d diverged:\noriginal %v\nrestored %v", e, a, b)
		}
	}
}

// TestCheckpointConfigMismatch: state written under one config must be
// refused by a detector with different evaluation parameters, leaving the
// refusing detector cold but usable.
func TestCheckpointConfigMismatch(t *testing.T) {
	orig, err := NewDetector(ckptTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 6; e++ {
		orig.Observe(e, time.Unix(int64(e), 0), ckptEpoch(e))
	}
	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	cfg := ckptTestConfig()
	cfg.ForecastThreshold = 999
	other, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.ReadCheckpoint(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("mismatched config restore: got %v, want ErrCheckpointMismatch", err)
	}
	if other.Epochs() != 0 {
		t.Fatalf("failed restore left %d epochs behind", other.Epochs())
	}
	// Still evaluates cleanly from cold.
	other.Observe(0, time.Unix(0, 0), ckptEpoch(0))
	if other.Epochs() != 1 {
		t.Fatalf("detector wedged after refused restore: %d epochs", other.Epochs())
	}
}

// TestCheckpointGarbage: corrupt and truncated inputs must error without
// panicking, and a failed restore must leave the detector cold.
func TestCheckpointGarbage(t *testing.T) {
	orig, err := NewDetector(ckptTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 6; e++ {
		orig.Observe(e, time.Unix(int64(e), 0), ckptEpoch(e))
	}
	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := [][]byte{
		nil,
		[]byte("not a checkpoint at all"),
		full[:3],
		full[:len(full)/2],
		full[:len(full)-1],
	}
	for i, data := range cases {
		d, err := NewDetector(ckptTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ReadCheckpoint(bytes.NewReader(data)); err == nil {
			t.Fatalf("case %d: corrupt checkpoint accepted", i)
		}
		if d.Epochs() != 0 || d.ForecastTracked() != 0 {
			t.Fatalf("case %d: failed restore left state (epochs=%d tracked=%d)",
				i, d.Epochs(), d.ForecastTracked())
		}
	}
}

// TestSaveLoadCheckpoint covers the file layer: atomic save, load,
// missing-file-is-ErrNotExist, and overwrite of a previous checkpoint.
func TestSaveLoadCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "detector.ckpt")

	d, err := NewDetector(ckptTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadCheckpoint(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("load of missing checkpoint: got %v, want ErrNotExist", err)
	}

	for e := 0; e < 4; e++ {
		d.Observe(e, time.Unix(int64(e), 0), ckptEpoch(e))
	}
	if err := d.SaveCheckpoint(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	for e := 4; e < 9; e++ {
		d.Observe(e, time.Unix(int64(e), 0), ckptEpoch(e))
	}
	if err := d.SaveCheckpoint(path); err != nil {
		t.Fatalf("re-save: %v", err)
	}

	r, err := NewDetector(ckptTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadCheckpoint(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if r.Epochs() != 9 {
		t.Fatalf("loaded checkpoint has %d epochs, want 9 (the newer save)", r.Epochs())
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir holds %d entries, want just the checkpoint: %v", len(entries), entries)
	}
}

// Soak-pinned ramp parameters: cmd/flowsoak injects exactly this shape
// (stable warmup at rampBase, then +rampStep per epoch against
// rampThreshold) and relies on the timing this test proves. Change these
// together or the soak's detection assertions go stale.
const (
	rampBase      = 2000
	rampStep      = 300
	rampThreshold = 2200
	rampWarmup    = 10
	rampKillAfter = 4 // ramp epochs evaluated before the "crash"
	rampBudget    = 5 // epochs a restored detector gets to re-alert
)

var rampKey = flow.Key{SrcIP: 0xc0a80001, DstIP: 0xc0a80002, SrcPort: 50000, DstPort: 443, Proto: 6}

func rampConfig() Config {
	return Config{
		Stages:            StageForecast,
		ForecastThreshold: rampThreshold,
		ForecastMinCount:  128,
		ForecastCapacity:  256,
	}
}

// rampCount is the subject flow's packet count at the given ramp epoch
// (0 = still flat, 1.. = ramping).
func rampCount(rampEpoch int) uint32 {
	if rampEpoch <= 0 {
		return rampBase
	}
	return uint32(rampBase + rampStep*rampEpoch)
}

func observeRamp(d *Detector, epoch, rampEpoch int) []Alert {
	return d.Observe(epoch, time.Unix(int64(1700000000+epoch), 0), []flow.Record{
		{Key: rampKey, Count: rampCount(rampEpoch)},
	})
}

// TestCheckpointRampRestore is the detection-continuity scenario the
// chaos soak asserts end to end: a slow ramp is in progress when the
// collector dies. The detector restored from its checkpoint carries the
// accumulated CUSUM drift across the restart and re-alerts within the
// budget; a cold-started control sees the elevated traffic as the new
// normal and stays quiet — the blind spot checkpoints exist to close.
func TestCheckpointRampRestore(t *testing.T) {
	subject, err := NewDetector(rampConfig())
	if err != nil {
		t.Fatal(err)
	}
	epoch := 0
	for ; epoch < rampWarmup; epoch++ {
		if alerts := observeRamp(subject, epoch, 0); len(alerts) != 0 {
			t.Fatalf("warmup epoch %d alerted: %v", epoch, alerts)
		}
	}
	for r := 1; r <= rampKillAfter; r++ {
		if alerts := observeRamp(subject, epoch, r); len(alerts) != 0 {
			t.Fatalf("ramp epoch %d alerted before the kill: %v", r, alerts)
		}
		epoch++
	}

	// "Crash": checkpoint, drop the detector, restore into a fresh one.
	var buf bytes.Buffer
	if err := subject.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewDetector(rampConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	control, err := NewDetector(rampConfig())
	if err != nil {
		t.Fatal(err)
	}

	restoredAt, controlAlerted := 0, false
	for i := 1; i <= rampBudget; i++ {
		r := rampKillAfter + i
		if alerts := observeRamp(restored, epoch, r); len(alerts) > 0 && restoredAt == 0 {
			if alerts[0].Kind != KindForecast {
				t.Fatalf("restored detector raised %v, want a forecast alert", alerts[0])
			}
			restoredAt = i
		}
		if alerts := observeRamp(control, i-1, r); len(alerts) > 0 {
			controlAlerted = true
		}
		epoch++
	}
	if restoredAt == 0 {
		t.Fatalf("restored detector did not re-alert on the in-progress ramp within %d epochs", rampBudget)
	}
	if controlAlerted {
		t.Fatalf("cold-start control alerted within %d epochs: the scenario no longer isolates checkpoint value", rampBudget)
	}
	t.Logf("restored detector re-alerted %d epochs after restart; control stayed quiet for %d", restoredAt, rampBudget)

	// The margin matters: a control left running PAST the budget must
	// eventually alert too (the ramp is real), proving the quiet window
	// above measures state loss, not an undetectable ramp.
	for i := rampBudget + 1; i <= rampBudget+8; i++ {
		if alerts := observeRamp(control, i-1, rampKillAfter+i); len(alerts) > 0 {
			controlAlerted = true
			break
		}
	}
	if !controlAlerted {
		t.Fatal("control never alerted even well past the budget: ramp parameters too weak to detect at all")
	}
}

// TestCheckpointForecastAges: restored forecast entries must keep their
// TTL standing relative to the restored epoch counter — a key absent
// across the restart must still be swept on schedule, and a fresh one
// must not be swept early.
func TestCheckpointForecastAges(t *testing.T) {
	cfg := Config{Stages: StageForecast, ForecastTTL: 3, ForecastMinCount: 64, ForecastCapacity: 64}
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stale := flow.Key{SrcIP: 1, DstIP: 2, Proto: 6}
	live := flow.Key{SrcIP: 3, DstIP: 4, Proto: 6}
	// Epoch 0: both keys. Epochs 1-2: only the live key.
	d.Observe(0, time.Unix(0, 0), []flow.Record{{Key: stale, Count: 500}, {Key: live, Count: 500}})
	for e := 1; e <= 2; e++ {
		d.Observe(e, time.Unix(int64(e), 0), []flow.Record{{Key: live, Count: 500}})
	}
	if n := d.ForecastTracked(); n != 2 {
		t.Fatalf("tracking %d keys before checkpoint, want 2", n)
	}

	var buf bytes.Buffer
	if err := d.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Two more live-only epochs after restore put the stale key 4 epochs
	// in the past (> TTL 3): swept. The live key stays.
	for e := 3; e <= 4; e++ {
		r.Observe(e, time.Unix(int64(e), 0), []flow.Record{{Key: live, Count: 500}})
	}
	if n := r.ForecastTracked(); n != 1 {
		t.Fatalf("tracking %d keys after post-restore sweep, want 1 (stale key swept)", n)
	}
}

// TestCheckpointBaselineContinuity: a restored detector's anomaly
// baselines must be warm — an outlier epoch right after restore scores
// against the pre-crash history instead of restarting the warmup.
func TestCheckpointBaselineContinuity(t *testing.T) {
	cfg := Config{Stages: StageAnomaly, BaselineWindow: 8, BaselineWarmup: 4, AnomalyScore: 8}
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steady := func(epoch int) []flow.Record {
		recs := make([]flow.Record, 20)
		for i := range recs {
			recs[i] = flow.Record{
				Key:   flow.Key{SrcIP: uint32(i + 1), DstIP: 0x0a000001, SrcPort: uint16(1000 + i), DstPort: 443, Proto: 6},
				Count: uint32(100 + i%3),
			}
		}
		return recs
	}
	for e := 0; e < 10; e++ {
		d.Observe(e, time.Unix(int64(e), 0), steady(e))
	}
	var buf bytes.Buffer
	if err := d.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// 100x the packet volume right after restore.
	burst := steady(10)
	for i := range burst {
		burst[i].Count *= 100
	}
	alerts := r.Observe(10, time.Unix(10, 0), burst)
	found := false
	for _, a := range alerts {
		if a.Kind == KindAnomaly && a.Metric == "packets" {
			found = true
		}
	}
	if !found {
		t.Fatalf("restored baselines missed a 100x packet burst (alerts: %v): warmup state was lost", alerts)
	}

	// The same burst against a cold detector is invisible: still warming up.
	cold, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if alerts := cold.Observe(0, time.Unix(10, 0), burst); len(alerts) != 0 {
		t.Fatalf("cold detector alerted during warmup: %v", alerts)
	}
}

// TestCheckpointPrevEpochRestored: heavy-change detection right after a
// restore must diff against the pre-crash epoch, not against emptiness —
// without the prev snapshot every steady flow would look newborn and the
// first post-restore epoch would be an alert storm.
func TestCheckpointPrevEpochRestored(t *testing.T) {
	cfg := Config{Stages: StageChange, ChangeMinDelta: 200, ChangeTopK: 8}
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steady := []flow.Record{
		{Key: flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 443, Proto: 6}, Count: 5000},
		{Key: flow.Key{SrcIP: 3, DstIP: 4, SrcPort: 11, DstPort: 80, Proto: 6}, Count: 7000},
	}
	for e := 0; e < 3; e++ {
		d.Observe(e, time.Unix(int64(e), 0), steady)
	}
	var buf bytes.Buffer
	if err := d.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ReadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if alerts := r.Observe(3, time.Unix(3, 0), steady); len(alerts) != 0 {
		t.Fatalf("steady traffic alerted right after restore: %v (prev epoch lost)", alerts)
	}
	// A real change still fires.
	changed := []flow.Record{steady[0], {Key: steady[1].Key, Count: 17000}}
	alerts := r.Observe(4, time.Unix(4, 0), changed)
	if len(alerts) != 1 || alerts[0].Kind != KindHeavyChange {
		t.Fatalf("post-restore heavy change: got %v, want one heavy-change alert", alerts)
	}
	if alerts[0].Baseline != 7000 {
		t.Fatalf("post-restore delta baseline %v, want the restored prev count 7000", alerts[0].Baseline)
	}
}

// TestCheckpointVersionRejected: a future-versioned checkpoint errors.
func TestCheckpointVersionRejected(t *testing.T) {
	d, err := NewDetector(ckptTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0x7f // version varint byte
	if err := d.ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("future checkpoint version accepted")
	}
}

// TestCheckpointBaselineBounds rejects a checkpoint whose baseline ring
// position escapes the window.
func TestCheckpointBaselineBounds(t *testing.T) {
	orig, err := NewDetector(ckptTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 6; e++ {
		orig.Observe(e, time.Unix(int64(e), 0), ckptEpoch(e))
	}
	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Fuzz-ish: flip single bytes through the stream; every mutation must
	// either restore cleanly or error — never panic, never out-of-bounds.
	data := buf.Bytes()
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		d, err := NewDetector(ckptTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		_ = d.ReadCheckpoint(bytes.NewReader(mut))
		// Whatever happened, the detector must still evaluate.
		d.Observe(int(d.Epochs()), time.Unix(0, 0), ckptEpoch(0))
	}
}
