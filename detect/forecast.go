// Per-key traffic forecasting for the slow-ramp detector. The
// epoch-over-epoch heavy-change pass only sees what moved since the last
// epoch, so an attack that ramps up below the per-epoch delta threshold
// never fires. The forecast table keeps a smoothed Holt model (level +
// trend) per tracked key and scores each epoch's count against the
// model's one-step forecast with a two-sided CUSUM: a slow ramp produces
// a small residual every epoch, the CUSUM accumulates what a single
// epoch's delta hides, and the key alerts when the accumulated drift
// crosses the threshold.
//
// The table is a compact open-addressed array in the topk digest-index
// idiom: one KeyHash per lookup, linear probing, backward-shift deletion,
// no Go map. Admission is gated on a per-key packet floor so mouse flows
// never occupy slots, capacity is fixed at construction, and keys absent
// for a configured number of epochs are swept out, so steady-state
// evaluation is allocation-free.
package detect

import (
	"math"

	"repro/flow"
	"repro/internal/hashing"
)

// forecastSeed salts the forecast table's digest independently of every
// other hash family in the pipeline.
const forecastSeed = 0xf0ca

// forecastEntry is one tracked key's Holt state.
type forecastEntry struct {
	key   flow.Key
	hash  uint64  // the key's digest, kept so sweeps never re-hash
	level float64 // smoothed count
	trend float64 // smoothed per-epoch slope
	pos   float64 // CUSUM of positive residuals (ramp up)
	neg   float64 // CUSUM of negative residuals (ramp down)
	last  int32   // epoch the key was last observed in
	used  bool
}

// forecastTable is the open-addressed per-key state store.
type forecastTable struct {
	slots     []forecastEntry
	n         int
	capacity  int     // admission bound (entries), slots is ~2x
	alpha     float64 // level gain
	beta      float64 // trend gain
	slack     float64 // per-epoch drift the CUSUM absorbs for free
	threshold float64 // CUSUM level that alerts (and re-arms)
	minCount  uint32  // admission floor
	ttl       int32   // epochs absent before a key is swept
}

// newForecastTable sizes the slot array at the next power of two holding
// capacity entries at <=50% load.
func newForecastTable(capacity int, alpha, beta, slack, threshold float64, minCount uint32, ttl int) *forecastTable {
	slots := 1
	for slots < 2*capacity {
		slots <<= 1
	}
	return &forecastTable{
		slots:     make([]forecastEntry, slots),
		capacity:  capacity,
		alpha:     alpha,
		beta:      beta,
		slack:     slack,
		threshold: threshold,
		minCount:  minCount,
		ttl:       int32(ttl),
		n:         0,
	}
}

// Len returns the number of tracked keys.
func (t *forecastTable) Len() int { return t.n }

// observe scores one key's epoch count against its forecast, then absorbs
// the count into the model. tracked is false when the key has no prior
// state (first sight, or below the admission floor); fired is true when
// the CUSUM crossed the threshold this epoch, in which case it re-arms so
// a continuing ramp alerts again only after re-accumulating. forecast is
// the pre-update one-step prediction and cusum the post-update
// accumulator the score derives from.
func (t *forecastTable) observe(key flow.Key, count uint32, epoch int) (forecast, cusum float64, tracked, fired bool) {
	w1, w2 := key.Words()
	h := hashing.KeyHash(forecastSeed, w1, w2)
	mask := uint64(len(t.slots) - 1)
	i := h & mask
	for t.slots[i].used {
		if e := &t.slots[i]; e.hash == h && e.key == key {
			x := float64(count)
			forecast = e.level + e.trend
			r := x - forecast
			e.pos = math.Max(0, e.pos+r-t.slack)
			e.neg = math.Max(0, e.neg-r-t.slack)
			cusum = math.Max(e.pos, e.neg)
			e.last = int32(epoch)
			if cusum >= t.threshold {
				// Change-point response: the alert acknowledged the shift,
				// so the model restarts at the observed value instead of
				// ringing while the Holt gains chase it. A ramp that keeps
				// going re-accumulates lag and re-alerts; a step that
				// levels off goes quiet immediately.
				e.level, e.trend = x, 0
				e.pos, e.neg = 0, 0
				return forecast, cusum, true, true
			}
			// Holt update.
			level := t.alpha*x + (1-t.alpha)*forecast
			e.trend = t.beta*(level-e.level) + (1-t.beta)*e.trend
			e.level = level
			return forecast, cusum, true, false
		}
		i = (i + 1) & mask
	}
	// First sight: admit keys past the floor while capacity lasts. The
	// first observation seeds the level, so scoring starts next epoch.
	if count >= t.minCount && t.n < t.capacity {
		t.slots[i] = forecastEntry{
			key: key, hash: h, level: float64(count), last: int32(epoch), used: true,
		}
		t.n++
	}
	return 0, 0, false, false
}

// sweep evicts keys not observed for ttl epochs, reclaiming their slots
// with backward-shift deletion so probe chains stay intact. One pass over
// the slot array per epoch — microseconds at realistic capacities.
func (t *forecastTable) sweep(epoch int) {
	limit := int32(epoch) - t.ttl
	for i := 0; i < len(t.slots); i++ {
		// delete may shift a later entry into slot i; re-examine it until
		// the slot holds a survivor or goes empty.
		for t.slots[i].used && t.slots[i].last < limit {
			t.delete(uint64(i))
		}
	}
}

// delete empties slot i and backward-shifts the rest of its probe
// cluster so every surviving entry stays reachable from its home slot.
func (t *forecastTable) delete(i uint64) {
	mask := uint64(len(t.slots) - 1)
	t.n--
	for {
		t.slots[i].used = false
		j := i
		for {
			j = (j + 1) & mask
			if !t.slots[j].used {
				return
			}
			home := t.slots[j].hash & mask
			// Entry at j may move into the hole at i only if its home
			// position is not inside (i, j] — the cyclic displacement
			// check shared with the topk index.
			if (j-home)&mask >= (j-i)&mask {
				break
			}
		}
		t.slots[i] = t.slots[j]
		i = j
	}
}
