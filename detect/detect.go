// Package detect turns the measurement pipeline from a state reporter
// into a change monitor: the classic downstream consumers of sketch-based
// network-wide measurement — heavy-change detection, superspreader/scan
// surfacing, DDoS victim surfacing, slow-ramp forecasting, and traffic
// anomaly alerting — evaluated once per epoch on the rotation drain,
// never on the packet path.
//
// A Detector consumes each completed epoch's record buffer (the
// adaptive.Manager drain hands it over via AttachDetector, or any
// per-epoch sink calls ObserveEpoch directly) and layers five detectors
// over per-epoch features:
//
//   - Heavy changers: per-key deltas against the previous epoch, computed
//     by the sorted two-cursor walk (netwide.DiffInto), fed weighted into
//     a Space-Saving tracker (topk.Tracker) so the top-k by |delta| is
//     found in bounded memory even when everything shifts at once.
//   - Forecast outliers: a compact open-addressed table keeps a smoothed
//     Holt model (level + trend) per tracked key; residuals against the
//     one-step forecast feed a two-sided CUSUM, so a flow ramping up
//     below the per-epoch delta threshold still alerts once its
//     accumulated drift crosses the line (see forecast.go).
//   - Superspreaders: per-source distinct-destination fanout, estimated
//     with a small bitmap sketch (DistinctSketch) over each source's run
//     in the key-sorted buffer, so a port-diverse client and a scanner
//     are told apart in constant memory.
//   - Victim fan-in: the mirror walk keyed by destination — per-dst
//     distinct sources over a dst-sorted view — so the many-sources→
//     one-destination shape of a DDoS victim surfaces even when every
//     individual flow is a mouse.
//   - Anomalies: robust EWMA/MAD baselines over epoch aggregates (total
//     packets, distinct flows, key-distribution entropy) flag epochs that
//     break the traffic's own history.
//
// Alerts are typed values with a kind, severity and the offending key;
// recent alerts and per-epoch change top-k lists are kept in fixed-size
// rings the query layer serves from (/alerts, /changes) without touching
// the detector's evaluation state. For cross-vantage correlation, the
// per-epoch change summaries can additionally be streamed to a
// Correlator (SetSummarySink), which promotes keys changing at several
// vantage points to network-wide alerts (see correlate.go).
package detect

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"repro/flow"
	"repro/netwide"
	"repro/topk"
)

// Kind classifies an alert.
type Kind uint8

const (
	// KindHeavyChange flags a flow whose packet count moved by at least
	// the configured delta between consecutive epochs.
	KindHeavyChange Kind = 1 + iota
	// KindSuperspreader flags a source contacting at least the configured
	// number of distinct destinations within one epoch.
	KindSuperspreader
	// KindAnomaly flags an epoch aggregate (packets, flows, entropy) that
	// breaks its robust baseline.
	KindAnomaly
	// KindForecast flags a flow whose accumulated drift from its Holt
	// forecast crossed the CUSUM threshold — the slow-ramp signal the
	// epoch-over-epoch delta misses.
	KindForecast
	// KindVictimFanIn flags a destination contacted by at least the
	// configured number of distinct sources within one epoch — the DDoS
	// victim mirror of the superspreader walk.
	KindVictimFanIn
	// KindNetwide flags a key promoted by the cross-vantage correlator:
	// changing at enough vantage points at once, or by enough in the
	// merged network-wide view.
	KindNetwide
)

// String renders the kind in the form ParseKind accepts.
func (k Kind) String() string {
	switch k {
	case KindHeavyChange:
		return "heavychange"
	case KindSuperspreader:
		return "superspreader"
	case KindAnomaly:
		return "anomaly"
	case KindForecast:
		return "forecast"
	case KindVictimFanIn:
		return "victimfanin"
	case KindNetwide:
		return "netwide"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind decodes a kind name; the accepted names are the String
// renderings.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "heavychange":
		return KindHeavyChange, nil
	case "superspreader":
		return KindSuperspreader, nil
	case "anomaly":
		return KindAnomaly, nil
	case "forecast":
		return KindForecast, nil
	case "victimfanin":
		return KindVictimFanIn, nil
	case "netwide":
		return KindNetwide, nil
	default:
		return 0, fmt.Errorf("detect: unknown alert kind %q", s)
	}
}

// Severity grades an alert. The ordering is meaningful: Critical >
// Warning > Info, so "at least warning" filters compare directly.
type Severity uint8

const (
	// SeverityInfo is informational.
	SeverityInfo Severity = 1 + iota
	// SeverityWarning crosses a configured threshold.
	SeverityWarning
	// SeverityCritical crosses the threshold by a wide margin.
	SeverityCritical
)

// String renders the severity in the form ParseSeverity accepts.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("severity(%d)", uint8(s))
	}
}

// ParseSeverity decodes a severity name.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return SeverityInfo, nil
	case "warning":
		return SeverityWarning, nil
	case "critical":
		return SeverityCritical, nil
	default:
		return 0, fmt.Errorf("detect: unknown severity %q", s)
	}
}

// Alert is one detection event.
type Alert struct {
	// Kind classifies the event.
	Kind Kind
	// Severity grades it (threshold crossed vs crossed by a wide margin).
	Severity Severity
	// Epoch is the epoch index the event was observed in.
	Epoch int
	// Time is the observation timestamp.
	Time time.Time
	// Key is the offending flow key. Heavy-change, forecast and netwide
	// alerts carry the full 5-tuple; superspreader alerts carry the
	// source address in Key.SrcIP and victim fan-in alerts the
	// destination address in Key.DstIP, with every other field zero;
	// anomaly alerts carry a zero key.
	Key flow.Key
	// Metric names the aggregate an anomaly alert fired on ("packets",
	// "flows", "entropy"); empty for the per-key kinds.
	Metric string
	// Value is the observed quantity: the signed delta for heavy changes
	// (merged across vantages for netwide), the fanout/fan-in estimate
	// for superspreaders and victims, the epoch count for forecast
	// outliers, the metric value for anomalies.
	Value float64
	// Baseline is the reference the value was judged against: the
	// previous epoch's count, the fanout/fan-in threshold, the one-step
	// forecast, or the EWMA center.
	Baseline float64
	// Score is the value in threshold units (heavy change, superspreader,
	// fan-in, forecast CUSUM, netwide) or the robust z-score (anomaly);
	// severities derive from it.
	Score float64
}

// String renders the alert as one log line, the stdout sink format.
func (a Alert) String() string {
	switch a.Kind {
	case KindHeavyChange:
		return fmt.Sprintf("[%s] %s epoch=%d %s delta=%+.0f (prev %.0f)",
			a.Severity, a.Kind, a.Epoch, a.Key, a.Value, a.Baseline)
	case KindSuperspreader:
		return fmt.Sprintf("[%s] %s epoch=%d src=%s fanout=%.0f (threshold %.0f)",
			a.Severity, a.Kind, a.Epoch, flow.IPString(a.Key.SrcIP), a.Value, a.Baseline)
	case KindVictimFanIn:
		return fmt.Sprintf("[%s] %s epoch=%d dst=%s fanin=%.0f (threshold %.0f)",
			a.Severity, a.Kind, a.Epoch, flow.IPString(a.Key.DstIP), a.Value, a.Baseline)
	case KindForecast:
		return fmt.Sprintf("[%s] %s epoch=%d %s count=%.0f forecast=%.0f cusum score=%.1f",
			a.Severity, a.Kind, a.Epoch, a.Key, a.Value, a.Baseline, a.Score)
	case KindNetwide:
		return fmt.Sprintf("[%s] %s epoch=%d %s merged_delta=%+.0f (prev %.0f) score=%.1f",
			a.Severity, a.Kind, a.Epoch, a.Key, a.Value, a.Baseline, a.Score)
	default:
		return fmt.Sprintf("[%s] %s epoch=%d metric=%s value=%.3f baseline=%.3f score=%.1f",
			a.Severity, a.Kind, a.Epoch, a.Metric, a.Value, a.Baseline, a.Score)
	}
}

// Change is one entry of an epoch's heavy-change top-k: the exact
// before/after counts of a flow the delta tracker surfaced. It is the
// netwide diff vocabulary, re-exported so the query layer needs no
// second type for the same concept.
type Change = netwide.Delta

// ChangeSummary is one epoch's change top-k, ordered by |delta|
// descending.
type ChangeSummary struct {
	Epoch   int
	Time    time.Time
	Changes []Change
}

// Features are the per-epoch aggregates the anomaly detector scores.
type Features struct {
	// Epoch is the epoch index.
	Epoch int
	// Packets is the total packet count across the epoch's records.
	Packets uint64
	// Flows is the number of distinct keys.
	Flows int
	// Entropy is the normalized Shannon entropy of the per-key packet
	// distribution, in [0,1]: 1 means perfectly even, 0 means one flow
	// carries everything (or fewer than two flows exist).
	Entropy float64
}

// Stage selects which detection passes a Detector runs; a bitmask so the
// cost of each pass can be measured (and paid) independently.
type Stage uint8

const (
	// StageChange runs the epoch-over-epoch heavy-change pass.
	StageChange Stage = 1 << iota
	// StageForecast runs the per-key Holt forecast / CUSUM pass.
	StageForecast
	// StageSpreader runs the per-source fanout walk.
	StageSpreader
	// StageFanIn runs the per-destination fan-in walk.
	StageFanIn
	// StageAnomaly runs the epoch-aggregate baseline scoring.
	StageAnomaly

	// StageAll enables every pass, the zero-config default.
	StageAll = StageChange | StageForecast | StageSpreader | StageFanIn | StageAnomaly
)

// Config parameterizes a Detector. The zero value takes every default.
type Config struct {
	// Stages selects the detection passes to run. Zero means StageAll.
	Stages Stage
	// ChangeMinDelta is the per-key |delta| that qualifies as a heavy
	// change. Default 1024.
	ChangeMinDelta uint32
	// SummaryMinDelta is the per-key |delta| floor for inclusion in the
	// per-epoch ChangeSummary. It defaults to ChangeMinDelta (summaries
	// carry exactly the alerted set); setting it lower feeds sub-threshold
	// deltas to a cross-vantage Correlator, which can promote keys whose
	// change only crosses the line after the network-wide merge. Must not
	// exceed ChangeMinDelta.
	SummaryMinDelta uint32
	// ChangeTopK is how many heavy changers are reported per epoch.
	// Default 16.
	ChangeTopK int
	// ChangeTrackerCapacity bounds the Space-Saving delta tracker.
	// Default max(1024, 8*ChangeTopK).
	ChangeTrackerCapacity int
	// FanoutThreshold is the distinct-destination count that makes a
	// source a superspreader. Default 128.
	FanoutThreshold int
	// FanInThreshold is the distinct-source count that makes a
	// destination a fan-in victim. Default 128.
	FanInThreshold int
	// ForecastCapacity bounds the per-key forecast table; only the
	// ForecastCapacity first keys past the admission floor are modelled.
	// Default 4096.
	ForecastCapacity int
	// ForecastMinCount is the per-epoch packet floor a key must reach to
	// be admitted into the forecast table. Default 128.
	ForecastMinCount uint32
	// ForecastThreshold is the accumulated (CUSUM) drift from the Holt
	// forecast, in packets, that raises a forecast alert. Default 1024.
	ForecastThreshold float64
	// ForecastSlack is the per-epoch residual magnitude the CUSUM absorbs
	// for free, keeping jitter from accumulating. Default
	// ForecastThreshold/8.
	ForecastSlack float64
	// ForecastAlpha is the Holt level gain. Default 0.3.
	ForecastAlpha float64
	// ForecastBeta is the Holt trend gain. Default 0.1.
	ForecastBeta float64
	// ForecastTTL is how many epochs a tracked key may go unobserved
	// before its slot is reclaimed. Default 8.
	ForecastTTL int
	// BaselineWindow is the sliding window (in epochs) of the anomaly
	// baselines. Default 32.
	BaselineWindow int
	// BaselineWarmup is how many epochs must be absorbed before anomaly
	// scoring starts. Default 8.
	BaselineWarmup int
	// AnomalyScore is the robust z-score that makes an epoch aggregate
	// anomalous. Default 8.
	AnomalyScore float64
	// EWMAAlpha is the smoothing factor of the baseline center.
	// Default 0.3.
	EWMAAlpha float64
	// AlertLog is the capacity of the recent-alert ring the query layer
	// serves from. Default 1024.
	AlertLog int
	// ChangeLog is how many per-epoch change summaries are retained.
	// Default 16.
	ChangeLog int
}

func (c Config) withDefaults() Config {
	if c.Stages == 0 {
		c.Stages = StageAll
	}
	if c.ChangeMinDelta == 0 {
		c.ChangeMinDelta = 1024
	}
	if c.SummaryMinDelta == 0 {
		c.SummaryMinDelta = c.ChangeMinDelta
	}
	if c.ChangeTopK == 0 {
		c.ChangeTopK = 16
	}
	if c.ChangeTrackerCapacity == 0 {
		c.ChangeTrackerCapacity = 8 * c.ChangeTopK
		if c.ChangeTrackerCapacity < 1024 {
			c.ChangeTrackerCapacity = 1024
		}
	}
	if c.FanoutThreshold == 0 {
		c.FanoutThreshold = 128
	}
	if c.FanInThreshold == 0 {
		c.FanInThreshold = 128
	}
	if c.ForecastCapacity == 0 {
		c.ForecastCapacity = 4096
	}
	if c.ForecastMinCount == 0 {
		c.ForecastMinCount = 128
	}
	if c.ForecastThreshold == 0 {
		c.ForecastThreshold = 1024
	}
	if c.ForecastSlack == 0 {
		c.ForecastSlack = c.ForecastThreshold / 8
	}
	if c.ForecastAlpha == 0 {
		c.ForecastAlpha = 0.3
	}
	if c.ForecastBeta == 0 {
		c.ForecastBeta = 0.1
	}
	if c.ForecastTTL == 0 {
		c.ForecastTTL = 8
	}
	if c.BaselineWindow == 0 {
		c.BaselineWindow = 32
	}
	if c.BaselineWarmup == 0 {
		c.BaselineWarmup = 8
	}
	if c.AnomalyScore == 0 {
		c.AnomalyScore = 8
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.3
	}
	if c.AlertLog == 0 {
		c.AlertLog = 1024
	}
	if c.ChangeLog == 0 {
		c.ChangeLog = 16
	}
	return c
}

// anomaly metric names, indexing the baselines array.
var metricNames = [...]string{"packets", "flows", "entropy"}

// Detector evaluates epochs and accumulates alerts. Observe/ObserveEpoch
// must be called from one goroutine at a time (the drain worker); the
// query accessors (AppendAlerts, AppendSummaries, LastFeatures, Epochs)
// are safe to call concurrently with evaluation.
type Detector struct {
	cfg      Config
	tracker  *topk.Tracker  // Space-Saving over |delta|
	sketch   DistinctSketch // reused distinct-count estimator (fanout and fan-in)
	forecast *forecastTable // per-key Holt/CUSUM state (nil without StageForecast)

	// Evaluation state, touched only by Observe.
	prev, cur []flow.Record // key-sorted snapshots of the last two epochs
	byDst     []flow.Record // dst-sorted view of cur for the fan-in walk
	deltas    []netwide.Delta
	topBuf    []flow.Record // tracker snapshot scratch
	changeBuf []Change      // per-epoch change list scratch
	subBuf    []Change      // sub-threshold (summary-only) selection scratch
	pending   []Alert       // alerts of the epoch being evaluated
	baselines [len(metricNames)]*baseline
	seen      uint64 // epochs evaluated (atomic not needed: mu-published)

	// Query-visible state.
	mu       sync.Mutex
	alerts   ring[Alert]
	changes  ring[ChangeSummary]
	features Features
	epochs   uint64

	// sink, when set, receives each epoch's fresh alerts after they are
	// logged; it runs on the evaluating goroutine (the drain worker), so
	// slow sinks should hand off internally.
	sink func([]Alert)
	// summarySink, when set, receives every epoch's change summary (empty
	// ones included — a correlator counts silence too). Same goroutine
	// and retention contract as sink.
	summarySink func(ChangeSummary)

	// seeding suppresses alert retention and sink delivery while
	// SeedFromHistory replays stored epochs: the replayed history still
	// warms every baseline, but its alerts already fired when the epochs
	// were live. Evaluating goroutine only.
	seeding bool

	// metrics, when set (SetMetrics, before evaluation), receives
	// per-epoch cost and alert attribution; nil-safe.
	metrics *Metrics
}

// NewDetector builds a detector.
func NewDetector(cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	if cfg.ChangeTopK < 1 {
		return nil, fmt.Errorf("detect: ChangeTopK must be positive, got %d", cfg.ChangeTopK)
	}
	if cfg.SummaryMinDelta > cfg.ChangeMinDelta {
		return nil, fmt.Errorf("detect: SummaryMinDelta %d exceeds ChangeMinDelta %d",
			cfg.SummaryMinDelta, cfg.ChangeMinDelta)
	}
	if cfg.FanoutThreshold < 1 {
		return nil, fmt.Errorf("detect: FanoutThreshold must be positive, got %d", cfg.FanoutThreshold)
	}
	if cfg.FanInThreshold < 1 {
		return nil, fmt.Errorf("detect: FanInThreshold must be positive, got %d", cfg.FanInThreshold)
	}
	if cfg.ForecastCapacity < 1 {
		return nil, fmt.Errorf("detect: ForecastCapacity must be positive, got %d", cfg.ForecastCapacity)
	}
	if cfg.ForecastThreshold < 0 || cfg.ForecastSlack < 0 {
		return nil, fmt.Errorf("detect: forecast threshold %v / slack %v negative",
			cfg.ForecastThreshold, cfg.ForecastSlack)
	}
	if cfg.ForecastAlpha <= 0 || cfg.ForecastAlpha > 1 || cfg.ForecastBeta <= 0 || cfg.ForecastBeta > 1 {
		return nil, fmt.Errorf("detect: forecast gains alpha %v / beta %v must be in (0,1]",
			cfg.ForecastAlpha, cfg.ForecastBeta)
	}
	if cfg.ForecastTTL < 1 {
		return nil, fmt.Errorf("detect: ForecastTTL must be positive, got %d", cfg.ForecastTTL)
	}
	if cfg.BaselineWindow < 2 || cfg.BaselineWarmup < 1 {
		return nil, fmt.Errorf("detect: baseline window %d / warmup %d too small",
			cfg.BaselineWindow, cfg.BaselineWarmup)
	}
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		return nil, fmt.Errorf("detect: EWMAAlpha must be in (0,1], got %v", cfg.EWMAAlpha)
	}
	tr, err := topk.NewTracker(cfg.ChangeTrackerCapacity)
	if err != nil {
		return nil, err
	}
	d := &Detector{
		cfg:     cfg,
		tracker: tr,
		alerts:  newRing[Alert](cfg.AlertLog),
		changes: newRing[ChangeSummary](cfg.ChangeLog),
	}
	if cfg.Stages&StageForecast != 0 {
		d.forecast = newForecastTable(cfg.ForecastCapacity, cfg.ForecastAlpha, cfg.ForecastBeta,
			cfg.ForecastSlack, cfg.ForecastThreshold, cfg.ForecastMinCount, cfg.ForecastTTL)
	}
	for i := range d.baselines {
		d.baselines[i] = newBaseline(cfg.BaselineWindow, cfg.EWMAAlpha)
	}
	return d, nil
}

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// SetSink registers a callback receiving each epoch's fresh alerts right
// after they land in the ring. It runs on the evaluating goroutine and
// must not retain the slice. Call before evaluation begins.
func (d *Detector) SetSink(fn func([]Alert)) { d.sink = fn }

// SetSummarySink registers a callback receiving every evaluated epoch's
// change summary — including empty ones, so a cross-vantage Correlator
// can count an epoch as reported even when this vantage saw nothing
// move. The summary's Changes slice is detector-owned scratch: the
// callback must not retain it (the Correlator copies). Runs on the
// evaluating goroutine; call before evaluation begins. Only fires with
// StageChange enabled.
func (d *Detector) SetSummarySink(fn func(ChangeSummary)) { d.summarySink = fn }

// ObserveEpoch evaluates one drained epoch, stamping it with the current
// time — the adaptive.EpochObserver surface the drain worker drives.
func (d *Detector) ObserveEpoch(epoch int, records []flow.Record) {
	d.Observe(epoch, time.Now(), records)
}

// Observe evaluates one epoch's record buffer and returns the alerts it
// raised. The records slice is not retained (the detector snapshots it
// into its own sorted buffer) and the returned slice is detector-owned
// scratch, valid only until the next Observe. Steady-state evaluation
// with stable epoch sizes is allocation-free.
func (d *Detector) Observe(epoch int, ts time.Time, records []flow.Record) []Alert {
	var evalStart time.Time
	if d.metrics != nil {
		evalStart = time.Now()
	}
	d.pending = d.pending[:0]

	// Snapshot and canonicalize: the drain hands records in shard-then-key
	// order (or arbitrary order from other sinks); every downstream pass
	// wants one key-sorted run with unique keys.
	d.cur = append(d.cur[:0], records...)
	netwide.SortByKey(d.cur)
	d.cur = foldDuplicates(d.cur)

	st := d.cfg.Stages
	feats := extractFeatures(epoch, d.cur, st&StageAnomaly != 0)
	if st&StageChange != 0 {
		d.detectChanges(epoch, ts)
	}
	if st&StageForecast != 0 {
		d.detectForecast(epoch, ts)
	}
	if st&StageSpreader != 0 {
		d.detectSpreaders(epoch, ts)
	}
	if st&StageFanIn != 0 {
		d.detectFanIn(epoch, ts)
	}
	if st&StageAnomaly != 0 {
		d.detectAnomalies(epoch, ts, feats)
	}

	// The evaluated epoch becomes the next comparison base.
	d.prev, d.cur = d.cur, d.prev
	d.seen++

	d.mu.Lock()
	if !d.seeding {
		for _, a := range d.pending {
			d.alerts.push(a)
		}
	}
	d.features = feats
	d.epochs = d.seen
	d.mu.Unlock()

	if !d.seeding && d.sink != nil && len(d.pending) > 0 {
		d.sink(d.pending)
	}
	if m := d.metrics; m != nil && !d.seeding {
		for _, a := range d.pending {
			m.countAlert(a)
		}
		m.ObserveNs.ObserveDuration(time.Since(evalStart))
	}
	return d.pending
}

// detectChanges runs the heavy-change pass: per-key deltas vs the
// previous epoch through the Space-Saving tracker, exact top-k recovered
// from the delta list. The first epoch has no comparison base and is
// skipped (but still reports an empty summary to the sink, so a
// correlator's epoch bookkeeping never waits on it). Deltas are gathered
// down to SummaryMinDelta; only those at or past ChangeMinDelta alert.
func (d *Detector) detectChanges(epoch int, ts time.Time) {
	d.changeBuf = d.changeBuf[:0]
	if d.seen == 0 {
		d.emitSummary(ChangeSummary{Epoch: epoch, Time: ts})
		return
	}
	d.deltas = netwide.DiffInto(d.deltas[:0], d.prev, d.cur, d.cfg.SummaryMinDelta)

	// Space-Saving bounds the candidate set when many keys qualify; exact
	// prev/cur values are then recovered from the (key-sorted) delta list,
	// so reported changes are never tracker estimates.
	d.tracker.Reset()
	for _, dl := range d.deltas {
		d.tracker.Add(dl.Key, dl.Abs())
	}
	d.topBuf = d.tracker.AppendTopK(d.topBuf[:0], d.cfg.ChangeTopK)

	for _, cand := range d.topBuf {
		i, ok := slices.BinarySearchFunc(d.deltas, cand.Key, func(dl netwide.Delta, k flow.Key) int {
			return flow.CompareKeys(dl.Key, k)
		})
		if !ok {
			continue // recycled tracker slot whose key never qualified
		}
		dl := d.deltas[i]
		if dl.Abs() < d.cfg.ChangeMinDelta {
			continue // alerted class only; sub-threshold selected below
		}
		d.changeBuf = append(d.changeBuf, dl)
	}
	if d.cfg.SummaryMinDelta < d.cfg.ChangeMinDelta {
		// Sub-threshold deltas get their own top-k, selected exactly
		// from the delta list: the tracker's |delta|-greedy top-k would
		// crowd them out behind the locally-alerted giants in a busy
		// epoch — which is precisely when the correlator needs them.
		d.subBuf = d.subBuf[:0]
		for _, dl := range d.deltas {
			if dl.Abs() < d.cfg.ChangeMinDelta {
				d.subBuf = append(d.subBuf, dl)
			}
		}
		sortByAbsDesc(d.subBuf)
		if len(d.subBuf) > d.cfg.ChangeTopK {
			d.subBuf = d.subBuf[:d.cfg.ChangeTopK]
		}
		d.changeBuf = append(d.changeBuf, d.subBuf...)
	}
	sortByAbsDesc(d.changeBuf)

	for _, c := range d.changeBuf {
		if c.Abs() < d.cfg.ChangeMinDelta {
			continue // summary-only entry for the correlator
		}
		score := float64(c.Abs()) / float64(d.cfg.ChangeMinDelta)
		sev := SeverityWarning
		if score >= 8 {
			sev = SeverityCritical
		}
		d.pending = append(d.pending, Alert{
			Kind: KindHeavyChange, Severity: sev, Epoch: epoch, Time: ts,
			Key: c.Key, Value: float64(c.Signed()), Baseline: float64(c.Prev), Score: score,
		})
	}

	// The query-served /changes ring keeps its heavy-change semantics:
	// only the alerted subset enters it. changeBuf is |delta|-descending,
	// so that subset is a prefix; the summary sink below still streams
	// the full buffer (sub-threshold entries included) to a correlator.
	alerted := len(d.changeBuf)
	for alerted > 0 && d.changeBuf[alerted-1].Abs() < d.cfg.ChangeMinDelta {
		alerted--
	}
	if !d.seeding {
		summary := ChangeSummary{Epoch: epoch, Time: ts}
		d.mu.Lock()
		// The ring entry owns its slice; recycle the slice of the entry
		// about to be evicted so steady-state summaries do not allocate.
		evicted := d.changes.evictee()
		if evicted != nil {
			summary.Changes = append(evicted.Changes[:0], d.changeBuf[:alerted]...)
		} else {
			summary.Changes = slices.Clone(d.changeBuf[:alerted])
		}
		d.changes.push(summary)
		d.mu.Unlock()
	}
	d.emitSummary(ChangeSummary{Epoch: epoch, Time: ts, Changes: d.changeBuf})
}

// sortByAbsDesc orders changes by |delta| descending, key order breaking
// ties.
func sortByAbsDesc(changes []Change) {
	slices.SortFunc(changes, func(a, b Change) int {
		if a.Abs() != b.Abs() {
			if a.Abs() > b.Abs() {
				return -1
			}
			return 1
		}
		return flow.CompareKeys(a.Key, b.Key)
	})
}

// emitSummary hands one epoch's change summary to the summary sink. The
// Changes slice is detector scratch — the sink contract forbids
// retaining it.
func (d *Detector) emitSummary(s ChangeSummary) {
	if d.summarySink != nil && !d.seeding {
		d.summarySink(s)
	}
}

// detectForecast runs the slow-ramp pass: every record of the canonical
// epoch view is scored against (and absorbed into) its Holt forecast;
// keys whose accumulated CUSUM drift crosses the threshold alert. A
// sweep then reclaims the slots of keys that stopped appearing.
func (d *Detector) detectForecast(epoch int, ts time.Time) {
	for _, r := range d.cur {
		forecast, cusum, _, fired := d.forecast.observe(r.Key, r.Count, epoch)
		if !fired {
			continue
		}
		score := cusum / d.cfg.ForecastThreshold
		sev := SeverityWarning
		if score >= 4 {
			sev = SeverityCritical
		}
		d.pending = append(d.pending, Alert{
			Kind: KindForecast, Severity: sev, Epoch: epoch, Time: ts,
			Key: r.Key, Value: float64(r.Count), Baseline: forecast, Score: score,
		})
	}
	d.forecast.sweep(epoch)
}

// detectFanIn runs the victim fan-in pass, the mirror of the
// superspreader walk: the epoch is re-sorted by destination into a
// reused buffer, each destination is one run, and only runs long enough
// to possibly cross the threshold pay for a sketch evaluation over their
// source addresses.
func (d *Detector) detectFanIn(epoch int, ts time.Time) {
	threshold := d.cfg.FanInThreshold
	d.byDst = append(d.byDst[:0], d.cur...)
	slices.SortFunc(d.byDst, func(a, b flow.Record) int {
		if a.Key.DstIP != b.Key.DstIP {
			if a.Key.DstIP < b.Key.DstIP {
				return -1
			}
			return 1
		}
		return flow.CompareKeys(a.Key, b.Key)
	})
	for start := 0; start < len(d.byDst); {
		dst := d.byDst[start].Key.DstIP
		end := start + 1
		for end < len(d.byDst) && d.byDst[end].Key.DstIP == dst {
			end++
		}
		if end-start >= threshold {
			d.sketch.Reset()
			for i := start; i < end; i++ {
				d.sketch.Add(d.byDst[i].Key.SrcIP)
			}
			if fanin := d.sketch.Estimate(); fanin >= threshold {
				score := float64(fanin) / float64(threshold)
				sev := SeverityWarning
				if score >= 4 {
					sev = SeverityCritical
				}
				d.pending = append(d.pending, Alert{
					Kind: KindVictimFanIn, Severity: sev, Epoch: epoch, Time: ts,
					Key:   flow.Key{DstIP: dst},
					Value: float64(fanin), Baseline: float64(threshold), Score: score,
				})
			}
		}
		start = end
	}
}

// detectSpreaders runs the superspreader pass over the key-sorted epoch:
// records of one source are contiguous (the packed key orders by source
// address first), so each source is one run, and only runs long enough to
// possibly cross the threshold pay for a sketch evaluation.
func (d *Detector) detectSpreaders(epoch int, ts time.Time) {
	threshold := d.cfg.FanoutThreshold
	for start := 0; start < len(d.cur); {
		src := d.cur[start].Key.SrcIP
		end := start + 1
		for end < len(d.cur) && d.cur[end].Key.SrcIP == src {
			end++
		}
		// A run of n records has at most n distinct destinations; short
		// runs cannot alert, so the sketch only ever sees heavy sources.
		if end-start >= threshold {
			d.sketch.Reset()
			for i := start; i < end; i++ {
				d.sketch.Add(d.cur[i].Key.DstIP)
			}
			if fanout := d.sketch.Estimate(); fanout >= threshold {
				score := float64(fanout) / float64(threshold)
				sev := SeverityWarning
				if score >= 4 {
					sev = SeverityCritical
				}
				d.pending = append(d.pending, Alert{
					Kind: KindSuperspreader, Severity: sev, Epoch: epoch, Time: ts,
					Key:   flow.Key{SrcIP: src},
					Value: float64(fanout), Baseline: float64(threshold), Score: score,
				})
			}
		}
		start = end
	}
}

// detectAnomalies scores the epoch aggregates against their baselines.
func (d *Detector) detectAnomalies(epoch int, ts time.Time, feats Features) {
	values := [len(metricNames)]float64{float64(feats.Packets), float64(feats.Flows), feats.Entropy}
	for i, b := range d.baselines {
		score, center, ok := b.observe(values[i], d.cfg.BaselineWarmup)
		if !ok || score < d.cfg.AnomalyScore {
			continue
		}
		sev := SeverityWarning
		if score >= 2*d.cfg.AnomalyScore {
			sev = SeverityCritical
		}
		d.pending = append(d.pending, Alert{
			Kind: KindAnomaly, Severity: sev, Epoch: epoch, Time: ts,
			Metric: metricNames[i], Value: values[i], Baseline: center, Score: score,
		})
	}
}

// AppendAlerts appends the retained alerts to dst, oldest first, and
// returns the extended slice. Safe concurrently with evaluation.
func (d *Detector) AppendAlerts(dst []Alert) []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alerts.appendAll(dst)
}

// AppendSummaries appends the retained per-epoch change summaries to
// dst, oldest first, with the change lists deep-copied so the caller's
// view cannot race later evaluations.
func (d *Detector) AppendSummaries(dst []ChangeSummary) []ChangeSummary {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(dst)
	dst = d.changes.appendAll(dst)
	for i := n; i < len(dst); i++ {
		dst[i].Changes = slices.Clone(dst[i].Changes)
	}
	return dst
}

// LastFeatures returns the aggregates of the most recently evaluated
// epoch.
func (d *Detector) LastFeatures() Features {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.features
}

// ForecastTracked returns how many keys the forecast table currently
// models (0 without StageForecast). Call from the evaluating goroutine.
func (d *Detector) ForecastTracked() int {
	if d.forecast == nil {
		return 0
	}
	return d.forecast.Len()
}

// Epochs returns how many epochs have been evaluated.
func (d *Detector) Epochs() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epochs
}

// extractFeatures computes the epoch aggregates in one pass over the
// canonical (sorted, unique-key) record buffer. The entropy term (one
// log per distinct flow) is only consumed by the anomaly baselines, so
// it is skipped — left 0 in LastFeatures — when that stage is off.
func extractFeatures(epoch int, recs []flow.Record, entropy bool) Features {
	f := Features{Epoch: epoch, Flows: len(recs)}
	for _, r := range recs {
		f.Packets += uint64(r.Count)
	}
	if entropy && len(recs) > 1 && f.Packets > 0 {
		total := float64(f.Packets)
		var h float64
		for _, r := range recs {
			if r.Count == 0 {
				continue
			}
			p := float64(r.Count) / total
			h -= p * math.Log2(p)
		}
		f.Entropy = h / math.Log2(float64(len(recs)))
	}
	return f
}

// foldDuplicates combines adjacent equal-key records of a key-sorted
// slice (saturating), defending the walks against callers whose buffers
// repeat keys (e.g. concatenated un-merged views).
func foldDuplicates(recs []flow.Record) []flow.Record {
	out := recs[:0]
	for _, r := range recs {
		if n := len(out); n > 0 && out[n-1].Key == r.Key {
			s := out[n-1].Count + r.Count
			if s < out[n-1].Count {
				s = ^uint32(0)
			}
			out[n-1].Count = s
			continue
		}
		out = append(out, r)
	}
	return out
}

// ring is a fixed-capacity FIFO over the last cap pushed values.
type ring[T any] struct {
	buf  []T
	next int
	n    int
}

func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, capacity)}
}

// evictee returns a pointer to the slot the next push will overwrite, or
// nil while the ring is still filling — the hook for recycling owned
// sub-slices.
func (r *ring[T]) evictee() *T {
	if r.n < len(r.buf) {
		return nil
	}
	return &r.buf[r.next]
}

func (r *ring[T]) push(v T) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// appendAll appends the retained values to dst, oldest first.
func (r *ring[T]) appendAll(dst []T) []T {
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		dst = append(dst, r.buf[(start+i)%len(r.buf)])
	}
	return dst
}
