package detect

import (
	"path/filepath"
	"testing"
	"time"

	"repro/flow"
	"repro/recordstore"
)

// seedStore writes a store whose one flow ramps slowly across epochs —
// the pattern the forecast stage needs history to catch.
func seedStore(t *testing.T, epochs int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seed.frec")
	fw, _, err := recordstore.OpenFile(path, recordstore.SyncPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0).UTC()
	for e := 0; e < epochs; e++ {
		recs := []flow.Record{
			{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000002, DstPort: 443, Proto: 6},
				Count: uint32(1000 + 200*e)}, // the ramp
			{Key: flow.Key{SrcIP: 0x0A000003, DstIP: 0x0A000004, DstPort: 53, Proto: 17},
				Count: 500}, // steady background
		}
		if err := fw.WriteEpoch(base.Add(time.Duration(e)*time.Minute), recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSeedFromHistory(t *testing.T) {
	path := seedStore(t, 12)
	src, err := recordstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	d, err := NewDetector(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sunk int
	d.SetSink(func(as []Alert) { sunk += len(as) })

	n, err := d.SeedFromHistory(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("seeded %d epochs, want 8", n)
	}
	if got := d.Epochs(); got != 8 {
		t.Fatalf("Epochs() = %d after seeding, want 8", got)
	}
	// Seeding warms state without emitting: no retained alerts, no
	// summaries, no sink deliveries.
	if as := d.AppendAlerts(nil); len(as) != 0 {
		t.Fatalf("seeding retained %d alerts: %v", len(as), as)
	}
	if ss := d.AppendSummaries(nil); len(ss) != 0 {
		t.Fatalf("seeding retained %d change summaries", len(ss))
	}
	if sunk != 0 {
		t.Fatalf("seeding delivered %d alerts to the sink", sunk)
	}
	// But the forecast state is warm: the ramping and steady keys are
	// tracked from history alone.
	if got := d.ForecastTracked(); got != 2 {
		t.Fatalf("ForecastTracked() = %d after seeding, want 2", got)
	}

	// A live epoch continuing the stored pattern evaluates against the
	// seeded comparison base: the steady flow must not raise a
	// heavy-change alert, which it would against an empty base.
	live := []flow.Record{
		{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000002, DstPort: 443, Proto: 6}, Count: 1000 + 200*8},
		{Key: flow.Key{SrcIP: 0x0A000003, DstIP: 0x0A000004, DstPort: 53, Proto: 17}, Count: 500},
	}
	as := d.Observe(8, time.Unix(1700000000, 0).Add(8*time.Minute), live)
	for _, a := range as {
		if a.Kind == KindHeavyChange && a.Key.DstPort == 53 {
			t.Fatalf("steady flow alerted despite seeded base: %v", a)
		}
	}
	if sunk != len(as) {
		t.Fatalf("live sink saw %d alerts, Observe returned %d", sunk, len(as))
	}
}

func TestSeedFromHistoryClamps(t *testing.T) {
	path := seedStore(t, 3)
	src, err := recordstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	d, err := NewDetector(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.SeedFromHistory(src, 100); err != nil || n != 3 {
		t.Fatalf("SeedFromHistory(100) = %d, %v; want 3, nil", n, err)
	}
	if n, err := d.SeedFromHistory(src, 0); err != nil || n != 0 {
		t.Fatalf("SeedFromHistory(0) = %d, %v; want 0, nil", n, err)
	}
}
