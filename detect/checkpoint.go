// Detector state checkpoints: the crash-safety half of the detection
// subsystem. Every stateful detector input ramps up from nothing on a
// cold start — the Holt/CUSUM forecast table needs epochs to re-lock its
// levels and trends, the EWMA/MAD baselines need a warmup window before
// anomaly scoring resumes, and the heavy-change pass needs a previous
// epoch to diff against. A collector restart therefore re-opens exactly
// the slow-ramp blind spot the forecaster exists to close: an attack
// ramping through the restart looks like the new normal.
//
// WriteCheckpoint serializes that state — forecast level/trend/CUSUM
// tables, baselines, the previous epoch's canonical record snapshot, and
// the epoch cursor — and ReadCheckpoint restores it into a compatibly
// configured detector, so detection quality survives a restart.
// SaveCheckpoint/LoadCheckpoint add the file discipline: atomic
// write-to-temp + rename + fsync, so a crash mid-checkpoint leaves the
// previous checkpoint intact, never a torn one.
//
// The alert and change-summary rings are deliberately not checkpointed:
// they are query-serving conveniences, and replaying stale alerts after
// a restart would be worse than an empty ring.
package detect

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/flow"
	"repro/internal/hashing"
)

// Checkpoint format constants.
const (
	ckptMagic   = "FDCK"
	ckptVersion = 1
)

// ErrCheckpointMismatch is returned by ReadCheckpoint when the checkpoint
// was written by a detector with an incompatible configuration (different
// stages, table capacity, gains, or baseline geometry). The caller should
// log it and cold-start rather than restore half-meaningful state.
var ErrCheckpointMismatch = errors.New("detect: checkpoint written under an incompatible config")

// ckptWriter accumulates the varint/float stream.
type ckptWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (c *ckptWriter) u64(v uint64) {
	if c.err != nil {
		return
	}
	n := binary.PutUvarint(c.buf[:], v)
	_, c.err = c.w.Write(c.buf[:n])
}

func (c *ckptWriter) f64(v float64) { c.u64(math.Float64bits(v)) }

// ckptReader decodes the stream with bounds discipline: every count is
// range-checked by the caller before allocation.
type ckptReader struct {
	r *bufio.Reader
}

func (c *ckptReader) u64() (uint64, error) { return binary.ReadUvarint(c.r) }

func (c *ckptReader) f64() (float64, error) {
	v, err := c.u64()
	return math.Float64frombits(v), err
}

// configFingerprint writes (or checks) the config fields that make
// checkpointed state meaningful. Thresholds that only gate alerting
// (ChangeMinDelta, AnomalyScore, fan-in/fanout) are deliberately not
// fingerprinted: retuning them across a restart is legitimate and the
// restored state stays valid.
func (d *Detector) configFingerprint() []uint64 {
	cfg := d.cfg
	return []uint64{
		uint64(cfg.Stages),
		uint64(cfg.ForecastCapacity),
		math.Float64bits(cfg.ForecastAlpha),
		math.Float64bits(cfg.ForecastBeta),
		math.Float64bits(cfg.ForecastSlack),
		math.Float64bits(cfg.ForecastThreshold),
		uint64(cfg.ForecastMinCount),
		uint64(cfg.ForecastTTL),
		uint64(cfg.BaselineWindow),
		math.Float64bits(cfg.EWMAAlpha),
	}
}

// WriteCheckpoint serializes the detector's evaluation state to w. It
// must be called from the evaluating goroutine (between Observe calls) —
// the state it walks is the same state Observe mutates.
func (d *Detector) WriteCheckpoint(w io.Writer) error {
	c := &ckptWriter{w: bufio.NewWriter(w)}
	if _, err := c.w.WriteString(ckptMagic); err != nil {
		return err
	}
	c.u64(ckptVersion)
	for _, f := range d.configFingerprint() {
		c.u64(f)
	}
	c.u64(d.seen)

	// Previous epoch snapshot: the heavy-change comparison base. Key words
	// raw (already compact), counts varint.
	c.u64(uint64(len(d.prev)))
	for _, r := range d.prev {
		w1, w2 := r.Key.Words()
		c.u64(w1)
		c.u64(w2)
		c.u64(uint64(r.Count))
	}

	// Anomaly baselines: EWMA center plus the MAD window ring, exactly.
	c.u64(uint64(len(d.baselines)))
	for _, b := range d.baselines {
		c.f64(b.ewma)
		c.u64(uint64(b.n))
		c.u64(uint64(b.next))
		c.u64(uint64(len(b.window)))
		for _, v := range b.window {
			c.f64(v)
		}
	}

	// Forecast table: used slots only, `last` stored as an age relative to
	// seen so restored epochs can renumber from any base.
	if d.forecast == nil {
		c.u64(0)
	} else {
		c.u64(uint64(d.forecast.n))
		for i := range d.forecast.slots {
			e := &d.forecast.slots[i]
			if !e.used {
				continue
			}
			w1, w2 := e.key.Words()
			c.u64(w1)
			c.u64(w2)
			c.f64(e.level)
			c.f64(e.trend)
			c.f64(e.pos)
			c.f64(e.neg)
			age := int64(d.seen) - int64(e.last)
			if age < 0 {
				age = 0
			}
			c.u64(uint64(age))
		}
	}
	if c.err != nil {
		return c.err
	}
	return c.w.Flush()
}

// ReadCheckpoint restores state written by WriteCheckpoint into this
// detector. The detector must be freshly constructed (or at least idle)
// with a configuration compatible with the checkpoint's, and the call
// must happen before evaluation starts. On any error the detector should
// be considered cold (partially restored state is wiped).
func (d *Detector) ReadCheckpoint(r io.Reader) (err error) {
	defer func() {
		if err != nil {
			d.reset()
		}
	}()
	c := &ckptReader{r: bufio.NewReader(r)}
	var hdr [len(ckptMagic)]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return fmt.Errorf("detect: read checkpoint header: %w", err)
	}
	if string(hdr[:]) != ckptMagic {
		return errors.New("detect: not a detector checkpoint")
	}
	ver, err := c.u64()
	if err != nil {
		return err
	}
	if ver != ckptVersion {
		return fmt.Errorf("detect: unsupported checkpoint version %d", ver)
	}
	for _, want := range d.configFingerprint() {
		got, err := c.u64()
		if err != nil {
			return err
		}
		if got != want {
			return ErrCheckpointMismatch
		}
	}
	seen, err := c.u64()
	if err != nil {
		return err
	}

	nPrev, err := c.u64()
	if err != nil {
		return err
	}
	if nPrev > 1<<28 {
		return fmt.Errorf("detect: implausible checkpoint epoch size %d", nPrev)
	}
	prev := make([]flow.Record, 0, nPrev)
	for i := uint64(0); i < nPrev; i++ {
		w1, err := c.u64()
		if err != nil {
			return err
		}
		w2, err := c.u64()
		if err != nil {
			return err
		}
		cnt, err := c.u64()
		if err != nil {
			return err
		}
		if w2>>40 != 0 || cnt > math.MaxUint32 {
			return fmt.Errorf("detect: corrupt checkpoint record %d", i)
		}
		prev = append(prev, flow.Record{
			Key: flow.Key{
				SrcIP: uint32(w1 >> 32), DstIP: uint32(w1),
				SrcPort: uint16(w2 >> 24), DstPort: uint16(w2 >> 8), Proto: uint8(w2),
			},
			Count: uint32(cnt),
		})
	}

	nBase, err := c.u64()
	if err != nil {
		return err
	}
	if nBase != uint64(len(d.baselines)) {
		return ErrCheckpointMismatch
	}
	for _, b := range d.baselines {
		if b.ewma, err = c.f64(); err != nil {
			return err
		}
		n, err := c.u64()
		if err != nil {
			return err
		}
		next, err := c.u64()
		if err != nil {
			return err
		}
		wlen, err := c.u64()
		if err != nil {
			return err
		}
		if wlen != uint64(len(b.window)) {
			return ErrCheckpointMismatch
		}
		if next >= wlen || n > math.MaxInt32 {
			return fmt.Errorf("detect: corrupt baseline state (n=%d next=%d)", n, next)
		}
		b.n, b.next = int(n), int(next)
		for i := range b.window {
			if b.window[i], err = c.f64(); err != nil {
				return err
			}
		}
	}

	nFc, err := c.u64()
	if err != nil {
		return err
	}
	if d.forecast == nil {
		if nFc != 0 {
			return ErrCheckpointMismatch
		}
	} else {
		if nFc > uint64(d.forecast.capacity) {
			return ErrCheckpointMismatch
		}
		clear(d.forecast.slots)
		d.forecast.n = 0
		for i := uint64(0); i < nFc; i++ {
			var e forecastEntry
			w1, err := c.u64()
			if err != nil {
				return err
			}
			w2, err := c.u64()
			if err != nil {
				return err
			}
			if w2>>40 != 0 {
				return fmt.Errorf("detect: corrupt checkpoint forecast key %d", i)
			}
			e.key = flow.Key{
				SrcIP: uint32(w1 >> 32), DstIP: uint32(w1),
				SrcPort: uint16(w2 >> 24), DstPort: uint16(w2 >> 8), Proto: uint8(w2),
			}
			if e.level, err = c.f64(); err != nil {
				return err
			}
			if e.trend, err = c.f64(); err != nil {
				return err
			}
			if e.pos, err = c.f64(); err != nil {
				return err
			}
			if e.neg, err = c.f64(); err != nil {
				return err
			}
			age, err := c.u64()
			if err != nil {
				return err
			}
			last := int64(seen) - int64(age)
			if last < math.MinInt32 {
				last = math.MinInt32
			}
			e.last = int32(last)
			if !d.forecast.insertRestored(e) {
				return fmt.Errorf("detect: duplicate forecast key in checkpoint: %s", e.key)
			}
		}
	}

	d.prev = prev
	d.seen = seen
	d.mu.Lock()
	d.epochs = seen
	d.mu.Unlock()
	return nil
}

// reset wipes evaluation state after a failed restore, leaving the
// detector cold but usable.
func (d *Detector) reset() {
	d.prev = d.prev[:0]
	d.seen = 0
	if d.forecast != nil {
		clear(d.forecast.slots)
		d.forecast.n = 0
	}
	for i := range d.baselines {
		b := d.baselines[i]
		*b = *newBaseline(len(b.window), b.alpha)
	}
	d.mu.Lock()
	d.epochs = 0
	d.mu.Unlock()
}

// SaveCheckpoint writes the checkpoint to path atomically: temp file in
// the same directory, fsync, rename over the target. A crash at any
// point leaves either the old checkpoint or the new one, never a torn
// file. Call from the evaluating goroutine.
func (d *Detector) SaveCheckpoint(path string) error {
	if m := d.metrics; m != nil {
		start := time.Now()
		defer func() { m.CheckpointSaveNs.ObserveDuration(time.Since(start)) }()
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := d.WriteCheckpoint(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint restores the checkpoint at path; a missing file is
// reported as os.ErrNotExist (a normal first boot, not damage).
func (d *Detector) LoadCheckpoint(path string) error {
	if m := d.metrics; m != nil {
		start := time.Now()
		defer func() { m.CheckpointLoadNs.ObserveDuration(time.Since(start)) }()
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.ReadCheckpoint(f)
}

// insertRestored places a checkpointed entry at its home probe position,
// refusing duplicates. It assumes the caller bounds insertions by the
// table capacity.
func (t *forecastTable) insertRestored(e forecastEntry) bool {
	w1, w2 := e.key.Words()
	e.hash = hashing.KeyHash(forecastSeed, w1, w2)
	e.used = true
	mask := uint64(len(t.slots) - 1)
	i := e.hash & mask
	for t.slots[i].used {
		if t.slots[i].hash == e.hash && t.slots[i].key == e.key {
			return false
		}
		i = (i + 1) & mask
	}
	t.slots[i] = e
	t.n++
	return true
}
