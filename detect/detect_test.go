package detect

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/flow"
)

func mustDetector(t testing.TB, cfg Config) *Detector {
	t.Helper()
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func ts(e int) time.Time { return time.Unix(int64(1700000000+60*e), 0).UTC() }

func key(i int) flow.Key {
	return flow.Key{SrcIP: 0x0A000000 | uint32(i), DstIP: 0xC0A80001, DstPort: 443, Proto: 6}
}

func TestKindSeverityRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindHeavyChange, KindSuperspreader, KindAnomaly} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	for _, s := range []Severity{SeverityInfo, SeverityWarning, SeverityCritical} {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSeverity(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
	if _, err := ParseSeverity("nope"); err == nil {
		t.Error("ParseSeverity accepted garbage")
	}
	if SeverityCritical <= SeverityWarning || SeverityWarning <= SeverityInfo {
		t.Error("severity ordering broken")
	}
}

func TestNewDetectorValidation(t *testing.T) {
	bad := []Config{
		{ChangeTopK: -1},
		{FanoutThreshold: -5},
		{BaselineWindow: 1, BaselineWarmup: 1},
		{EWMAAlpha: 2},
	}
	for i, cfg := range bad {
		if _, err := NewDetector(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	d := mustDetector(t, Config{})
	if d.Config().ChangeTopK != 16 || d.Config().FanoutThreshold != 128 {
		t.Errorf("defaults not applied: %+v", d.Config())
	}
}

// TestDistinctSketchAccuracy pins the linear-counting estimate within a
// few percent across the fanout range the superspreader thresholds use.
func TestDistinctSketchAccuracy(t *testing.T) {
	for _, n := range []int{10, 64, 128, 512, 1000} {
		var s DistinctSketch
		for i := 0; i < n; i++ {
			s.Add(uint32(0xE0000000 + i*2654435761))
		}
		est := s.Estimate()
		if relErr := math.Abs(float64(est-n)) / float64(n); relErr > 0.1 {
			t.Errorf("n=%d: estimate %d off by %.1f%%", n, est, 100*relErr)
		}
		// Duplicates must not move the estimate.
		before := s.Estimate()
		for i := 0; i < n; i++ {
			s.Add(uint32(0xE0000000 + i*2654435761))
		}
		if s.Estimate() != before {
			t.Errorf("n=%d: duplicates changed the estimate", n)
		}
		s.Reset()
		if s.Estimate() != 0 || s.Set() != 0 {
			t.Errorf("n=%d: Reset left residue", n)
		}
	}
}

// TestHeavyChangeOnsetAndRecovery: a spiked flow alerts with a positive
// delta on onset and a negative delta when it falls back; the first
// epoch never alerts (no comparison base).
func TestHeavyChangeOnsetAndRecovery(t *testing.T) {
	// StageChange only: the spike would (correctly) also trip the
	// forecast CUSUM, which has its own tests.
	d := mustDetector(t, Config{Stages: StageChange, ChangeMinDelta: 100})
	base := []flow.Record{{Key: key(1), Count: 500}, {Key: key(2), Count: 300}}
	if alerts := d.Observe(0, ts(0), base); len(alerts) != 0 {
		t.Fatalf("first epoch raised %d alerts", len(alerts))
	}

	spiked := []flow.Record{{Key: key(1), Count: 500}, {Key: key(2), Count: 2300}}
	alerts := d.Observe(1, ts(1), spiked)
	if len(alerts) != 1 || alerts[0].Kind != KindHeavyChange {
		t.Fatalf("onset: got %v", alerts)
	}
	a := alerts[0]
	if a.Key != key(2) || a.Value != 2000 || a.Baseline != 300 || a.Epoch != 1 {
		t.Errorf("onset alert wrong: %+v", a)
	}
	if a.Severity != SeverityCritical { // 2000/100 = 20x threshold
		t.Errorf("onset severity = %v, want critical", a.Severity)
	}

	alerts = d.Observe(2, ts(2), base)
	if len(alerts) != 1 || alerts[0].Value != -2000 {
		t.Fatalf("recovery: got %v", alerts)
	}

	// The summaries ring holds both evaluated epochs' top-k with exact
	// counts (epoch 0 has no comparison base, so no summary).
	sums := d.AppendSummaries(nil)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	if len(sums[0].Changes) != 1 || sums[0].Changes[0] != (Change{Key: key(2), Prev: 300, Cur: 2300}) {
		t.Errorf("epoch 1 summary wrong: %+v", sums[0].Changes)
	}
	if sums[1].Changes[0].Signed() != -2000 {
		t.Errorf("epoch 2 delta = %d, want -2000", sums[1].Changes[0].Signed())
	}
}

// TestHeavyChangeVanishedFlow: a flow disappearing entirely is a heavy
// change against zero.
func TestHeavyChangeVanishedFlow(t *testing.T) {
	d := mustDetector(t, Config{ChangeMinDelta: 100})
	d.Observe(0, ts(0), []flow.Record{{Key: key(1), Count: 5000}})
	alerts := d.Observe(1, ts(1), nil)
	if len(alerts) != 1 || alerts[0].Value != -5000 || alerts[0].Baseline != 5000 {
		t.Fatalf("vanish: got %v", alerts)
	}
}

// TestHeavyChangeTopKBound: with more qualifying changes than
// ChangeTopK, only the k largest are reported, in |delta| order.
func TestHeavyChangeTopKBound(t *testing.T) {
	d := mustDetector(t, Config{ChangeMinDelta: 10, ChangeTopK: 4})
	d.Observe(0, ts(0), nil)
	var recs []flow.Record
	for i := 0; i < 32; i++ {
		recs = append(recs, flow.Record{Key: key(i), Count: uint32(100 + 10*i)})
	}
	alerts := d.Observe(1, ts(1), recs)
	if len(alerts) != 4 {
		t.Fatalf("got %d alerts, want 4", len(alerts))
	}
	for i, a := range alerts {
		want := float64(100 + 10*(31-i))
		if a.Value != want {
			t.Errorf("rank %d: delta %v, want %v", i, a.Value, want)
		}
	}
}

// TestSuperspreader: a source fanning out to many distinct destinations
// alerts; a source with as many flows to one destination (port diverse)
// does not.
func TestSuperspreader(t *testing.T) {
	d := mustDetector(t, Config{FanoutThreshold: 64})
	var recs []flow.Record
	// Scanner: one source, 200 distinct destinations.
	for i := 0; i < 200; i++ {
		recs = append(recs, flow.Record{
			Key:   flow.Key{SrcIP: 0x01010101, DstIP: 0xE0000000 | uint32(i), DstPort: 80, Proto: 6},
			Count: 1,
		})
	}
	// Busy client: one source, 200 flows to a single destination across
	// ports — long run, no fanout.
	for i := 0; i < 200; i++ {
		recs = append(recs, flow.Record{
			Key:   flow.Key{SrcIP: 0x02020202, DstIP: 0xC0C0C0C0, SrcPort: uint16(1024 + i), Proto: 6},
			Count: 3,
		})
	}
	alerts := d.Observe(0, ts(0), recs)
	var spread []Alert
	for _, a := range alerts {
		if a.Kind == KindSuperspreader {
			spread = append(spread, a)
		}
	}
	if len(spread) != 1 {
		t.Fatalf("superspreader alerts: %v", spread)
	}
	a := spread[0]
	if a.Key.SrcIP != 0x01010101 {
		t.Errorf("flagged wrong source %s", flow.IPString(a.Key.SrcIP))
	}
	if a.Value < 180 || a.Value > 220 {
		t.Errorf("fanout estimate %v far from 200", a.Value)
	}
}

// TestAnomalyBaseline: stable traffic never alerts; a collapsed epoch
// after warmup alerts on the aggregates.
func TestAnomalyBaseline(t *testing.T) {
	d := mustDetector(t, Config{
		// Park the per-key detectors so only anomalies fire.
		ChangeMinDelta: 1 << 30, FanoutThreshold: 1 << 20,
		BaselineWarmup: 4, BaselineWindow: 8, AnomalyScore: 6,
	})
	epoch := 0
	stable := func() []flow.Record {
		var recs []flow.Record
		for i := 0; i < 100; i++ {
			// Mild per-epoch variation so the MAD is non-zero.
			recs = append(recs, flow.Record{Key: key(i), Count: uint32(100 + (epoch+i)%7)})
		}
		return recs
	}
	for ; epoch < 10; epoch++ {
		if alerts := d.Observe(epoch, ts(epoch), stable()); len(alerts) != 0 {
			t.Fatalf("stable epoch %d alerted: %v", epoch, alerts)
		}
	}
	// Traffic collapses: packets and flows crash far below baseline.
	alerts := d.Observe(epoch, ts(epoch), []flow.Record{{Key: key(0), Count: 3}})
	metrics := map[string]bool{}
	for _, a := range alerts {
		if a.Kind != KindAnomaly {
			t.Fatalf("unexpected kind: %+v", a)
		}
		metrics[a.Metric] = true
	}
	if !metrics["packets"] || !metrics["flows"] {
		t.Errorf("collapse missed: alerted on %v", metrics)
	}
	f := d.LastFeatures()
	if f.Packets != 3 || f.Flows != 1 || f.Entropy != 0 {
		t.Errorf("features %+v", f)
	}
}

// TestAlertRingEviction: the ring keeps only the newest AlertLog alerts.
func TestAlertRingEviction(t *testing.T) {
	d := mustDetector(t, Config{Stages: StageChange, ChangeMinDelta: 10, ChangeTopK: 1, AlertLog: 3})
	d.Observe(0, ts(0), nil)
	for e := 1; e <= 5; e++ {
		// Alternate one flow's count so every epoch has exactly one change.
		c := uint32(1000 * (e % 2))
		d.Observe(e, ts(e), []flow.Record{{Key: key(1), Count: c + 1}})
	}
	alerts := d.AppendAlerts(nil)
	if len(alerts) != 3 {
		t.Fatalf("ring holds %d, want 3", len(alerts))
	}
	for i, a := range alerts {
		if a.Epoch != 3+i {
			t.Errorf("slot %d epoch %d, want %d (oldest-first)", i, a.Epoch, 3+i)
		}
	}
	if got := d.Epochs(); got != 6 {
		t.Errorf("Epochs() = %d, want 6", got)
	}
}

// TestObserveUnsortedDuplicates: arbitrary input order and duplicate
// keys fold into the canonical view before detection.
func TestObserveUnsortedDuplicates(t *testing.T) {
	d := mustDetector(t, Config{ChangeMinDelta: 100})
	d.Observe(0, ts(0), []flow.Record{{Key: key(3), Count: 50}})
	alerts := d.Observe(1, ts(1), []flow.Record{
		{Key: key(3), Count: 400},
		{Key: key(1), Count: 7},
		{Key: key(3), Count: 250}, // duplicate: folds to 650
	})
	if len(alerts) != 1 || alerts[0].Value != 600 {
		t.Fatalf("got %v, want one +600 change", alerts)
	}
	if f := d.LastFeatures(); f.Flows != 2 || f.Packets != 657 {
		t.Errorf("features %+v", f)
	}
}

// TestSinkReceivesFreshAlerts: the sink fires once per alerting epoch
// with that epoch's alerts.
func TestSinkReceivesFreshAlerts(t *testing.T) {
	d := mustDetector(t, Config{ChangeMinDelta: 100})
	var got []string
	d.SetSink(func(as []Alert) {
		for _, a := range as {
			got = append(got, fmt.Sprintf("e%d:%s", a.Epoch, a.Kind))
		}
	})
	d.Observe(0, ts(0), []flow.Record{{Key: key(1), Count: 10}})
	d.Observe(1, ts(1), []flow.Record{{Key: key(1), Count: 900}})
	d.Observe(2, ts(2), []flow.Record{{Key: key(1), Count: 900}}) // no change
	if len(got) != 1 || got[0] != "e1:heavychange" {
		t.Errorf("sink saw %v", got)
	}
}

// TestObserveSteadyStateAllocFree pins the drain-worker contract: once
// the detector's buffers have grown, evaluating an epoch of stable shape
// must not allocate — detection adds no GC pressure to the drain.
func TestObserveSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	d := mustDetector(t, Config{ChangeMinDelta: 50})
	recs := make([]flow.Record, 0, 4096)
	epoch := 0
	build := func() []flow.Record {
		recs = recs[:0]
		for i := 0; i < 4000; i++ {
			// A rotating subset shifts by ±100 so the change path stays
			// exercised; one source fans out past the threshold.
			c := uint32(200)
			if (i+epoch)%100 == 0 {
				c += 100
			}
			recs = append(recs, flow.Record{Key: key(i), Count: c})
		}
		for i := 0; i < 200; i++ {
			recs = append(recs, flow.Record{
				Key:   flow.Key{SrcIP: 0x01010101, DstIP: 0xE0000000 | uint32(i), Proto: 6},
				Count: 1,
			})
		}
		return recs
	}
	// Warm until the rings have wrapped (ChangeLog summaries recycle
	// their slices only once the ring is full).
	for ; epoch < d.Config().ChangeLog+2; epoch++ {
		d.Observe(epoch, ts(epoch), build())
	}
	allocs := testing.AllocsPerRun(50, func() {
		d.Observe(epoch, ts(epoch), build())
		epoch++
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f times per epoch at steady state, want 0", allocs)
	}
}
