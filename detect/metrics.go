package detect

import (
	"repro/telemetry"
)

// Metrics carries the detector's instruments: alert volume broken down
// by kind and severity, the per-epoch evaluation cost, and checkpoint
// save/load latency. Everything is observed at epoch (or checkpoint)
// granularity on the evaluating goroutine — nothing touches the packet
// path.
type Metrics struct {
	// ObserveNs is the full evaluation cost of one epoch (every
	// enabled stage).
	ObserveNs *telemetry.Histogram
	// CheckpointSaveNs / CheckpointLoadNs time the durable checkpoint
	// round trips (write+fsync+rename, and restore).
	CheckpointSaveNs *telemetry.Histogram
	CheckpointLoadNs *telemetry.Histogram

	// Fixed per-kind / per-severity alert counters, indexed by the
	// (small, dense) Kind and Severity enums so the emit path is an
	// array index, not a map lookup.
	kinds [KindNetwide + 1]*telemetry.Counter
	sevs  [SeverityCritical + 1]*telemetry.Counter
}

// NewMetrics registers the detector instruments under the given label
// pairs and returns them for SetMetrics.
func NewMetrics(reg *telemetry.Registry, labelPairs ...string) *Metrics {
	m := &Metrics{
		ObserveNs: reg.Histogram(
			telemetry.Name("detect_observe_ns", labelPairs...),
			"full epoch evaluation cost (all enabled stages), ns"),
		CheckpointSaveNs: reg.Histogram(
			telemetry.Name("detect_checkpoint_save_ns", labelPairs...),
			"checkpoint save latency (write+fsync+rename), ns"),
		CheckpointLoadNs: reg.Histogram(
			telemetry.Name("detect_checkpoint_load_ns", labelPairs...),
			"checkpoint restore latency, ns"),
	}
	for k := KindHeavyChange; k <= KindNetwide; k++ {
		lbl := append(append([]string{}, labelPairs...), "kind", k.String())
		m.kinds[k] = reg.Counter(telemetry.Name("detect_alerts_total", lbl...),
			"alerts raised, by kind")
	}
	for s := SeverityInfo; s <= SeverityCritical; s++ {
		lbl := append(append([]string{}, labelPairs...), "severity", s.String())
		m.sevs[s] = reg.Counter(telemetry.Name("detect_alerts_by_severity_total", lbl...),
			"alerts raised, by severity")
	}
	return m
}

// countAlert attributes one raised alert; nil receiver is free.
func (m *Metrics) countAlert(a Alert) {
	if m == nil {
		return
	}
	if int(a.Kind) < len(m.kinds) {
		m.kinds[a.Kind].Inc()
	}
	if int(a.Severity) < len(m.sevs) {
		m.sevs[a.Severity].Inc()
	}
}

// SetMetrics attaches instruments. Call before evaluation begins, on
// the goroutine that will drive Observe.
func (d *Detector) SetMetrics(m *Metrics) { d.metrics = m }
