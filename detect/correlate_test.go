package detect

import (
	"testing"

	"repro/flow"
	"repro/netwide"
)

func mustCorrelator(t *testing.T, cfg CorrelatorConfig) *Correlator {
	t.Helper()
	c, err := NewCorrelator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// summary builds one vantage's per-epoch report from (key, prev, cur)
// triples, in the |delta|-descending order a Detector emits.
func summary(epoch int, changes ...Change) ChangeSummary {
	return ChangeSummary{Epoch: epoch, Time: ts(epoch), Changes: changes}
}

func TestCorrelatorValidation(t *testing.T) {
	if _, err := NewCorrelator(CorrelatorConfig{}); err == nil {
		t.Error("no vantages accepted")
	}
	if _, err := NewCorrelator(CorrelatorConfig{Vantages: []string{"a", "a"}}); err == nil {
		t.Error("duplicate vantage accepted")
	}
	if _, err := NewCorrelator(CorrelatorConfig{Vantages: []string{"a"}, Quorum: 2}); err == nil {
		t.Error("quorum above vantage count accepted")
	}
	c := mustCorrelator(t, CorrelatorConfig{Vantages: []string{"a"}})
	if got := c.Config().Quorum; got != 1 {
		t.Errorf("single-vantage default quorum %d, want 1", got)
	}
}

// TestCorrelatorQuorumPromotion: a key locally alerting at >= q vantages
// is promoted with per-vantage evidence; a key alerting at only one is
// not.
func TestCorrelatorQuorumPromotion(t *testing.T) {
	c := mustCorrelator(t, CorrelatorConfig{
		Vantages: []string{"sw1", "sw2", "sw3"}, Quorum: 2, VantageMinDelta: 1000,
		NetwideMinDelta: 1 << 30, // merged-delta path parked
	})
	// Key 1 spikes at sw1+sw2 (coordinated), key 2 only at sw3 (local).
	c.ObserveSummary("sw1", summary(0, Change{Key: key(1), Prev: 100, Cur: 2000}))
	c.ObserveSummary("sw2", summary(0, Change{Key: key(1), Prev: 50, Cur: 1500}))
	c.ObserveSummary("sw3", summary(0, Change{Key: key(2), Prev: 0, Cur: 5000}))

	alerts := c.AppendNetwideAlerts(nil)
	if len(alerts) != 1 {
		t.Fatalf("promoted %d keys, want 1: %v", len(alerts), alerts)
	}
	a := alerts[0]
	if a.Kind != KindNetwide || a.Key != key(1) || a.Epoch != 0 {
		t.Fatalf("wrong promotion: %+v", a.Alert)
	}
	if a.Value != 3350 || a.Baseline != 150 { // merged (2000-100)+(1500-50)
		t.Errorf("merged delta %v / prev %v, want 3350 / 150", a.Value, a.Baseline)
	}
	if len(a.Evidence) != 2 {
		t.Fatalf("evidence %v, want sw1+sw2", a.Evidence)
	}
	for i, want := range []string{"sw1", "sw2"} {
		ev := a.Evidence[i]
		if ev.Vantage != want || !ev.Alerted {
			t.Errorf("evidence %d: %+v, want alerted %s", i, ev, want)
		}
	}
	if got := c.Epochs(); got != 1 {
		t.Errorf("Epochs() = %d, want 1", got)
	}
}

// TestCorrelatorMergedDeltaPromotion: a key moving below every local
// alert threshold is still promoted when the merged delta crosses the
// netwide line — the thin-spread attack path.
func TestCorrelatorMergedDeltaPromotion(t *testing.T) {
	c := mustCorrelator(t, CorrelatorConfig{
		Vantages: []string{"a", "b", "c"}, Quorum: 2,
		VantageMinDelta: 1024, NetwideMinDelta: 2048,
	})
	// 900 per vantage: below 1024 locally, 2700 merged.
	for _, v := range []string{"a", "b", "c"} {
		c.ObserveSummary(v, summary(0, Change{Key: key(7), Prev: 100, Cur: 1000}))
	}
	alerts := c.AppendNetwideAlerts(nil)
	if len(alerts) != 1 || alerts[0].Key != key(7) {
		t.Fatalf("got %v, want key 7 promoted on merged delta", alerts)
	}
	a := alerts[0]
	if a.Value != 2700 {
		t.Errorf("merged delta %v, want 2700", a.Value)
	}
	for _, ev := range a.Evidence {
		if ev.Alerted {
			t.Errorf("evidence %+v claims a local alert below threshold", ev)
		}
	}
	// Sub-threshold at a single vantage: stays local noise.
	c.ObserveSummary("a", summary(1, Change{Key: key(8), Prev: 0, Cur: 900}))
	c.ObserveSummary("b", summary(1))
	c.ObserveSummary("c", summary(1))
	if got := c.AppendNetwideAlerts(nil); len(got) != 1 {
		t.Fatalf("single-vantage sub-threshold delta promoted: %v", got)
	}
}

// TestCorrelatorPendingWindow: a dead vantage cannot wedge correlation —
// once the pending window overflows, the oldest epoch correlates with
// the reports that arrived, and a report landing after its epoch was
// correlated counts as late.
func TestCorrelatorPendingWindow(t *testing.T) {
	c := mustCorrelator(t, CorrelatorConfig{
		Vantages: []string{"up", "down"}, Quorum: 2,
		VantageMinDelta: 100, NetwideMinDelta: 1000, PendingEpochs: 2,
	})
	// Only "up" reports; "down" is dead. Epochs 0.. stay pending until
	// the window overflows.
	for e := 0; e < 4; e++ {
		c.ObserveSummary("up", summary(e, Change{Key: key(1), Prev: 0, Cur: 5000}))
	}
	// Window 2: epochs 0 and 1 must have been force-correlated (merged
	// delta 5000 >= 1000 promotes from the one reporting vantage).
	alerts := c.AppendNetwideAlerts(nil)
	if len(alerts) != 2 {
		t.Fatalf("force-correlated %d epochs, want 2: %v", len(alerts), alerts)
	}
	if len(alerts[0].Evidence) != 1 || alerts[0].Evidence[0].Vantage != "up" {
		t.Errorf("evidence %v, want up only", alerts[0].Evidence)
	}
	// The dead vantage wakes up with a report for epoch 0: too late.
	c.ObserveSummary("down", summary(0, Change{Key: key(1), Prev: 0, Cur: 5000}))
	if got := c.Late(); got != 1 {
		t.Errorf("Late() = %d, want 1", got)
	}
	// Unregistered vantages are ignored outright.
	c.ObserveSummary("ghost", summary(9, Change{Key: key(1), Prev: 0, Cur: 9000}))
	if got := c.AppendNetwideAlerts(nil); len(got) != 2 {
		t.Fatalf("ghost vantage correlated: %v", got)
	}
}

// TestCorrelatorDetectorWiring drives two real detectors through the
// summary sink and checks end-to-end promotion: a key spiking at both
// vantages in the same epoch comes out as one netwide alert.
func TestCorrelatorDetectorWiring(t *testing.T) {
	c := mustCorrelator(t, CorrelatorConfig{
		Vantages: []string{"v0", "v1"}, Quorum: 2, VantageMinDelta: 1024,
	})
	var sunk int
	c.SetSink(func(as []NetwideAlert) { sunk += len(as) })
	dets := make([]*Detector, 2)
	for i := range dets {
		d := mustDetector(t, Config{Stages: StageChange, ChangeMinDelta: 1024, SummaryMinDelta: 256})
		name := c.Config().Vantages[i]
		d.SetSummarySink(func(s ChangeSummary) { c.ObserveSummary(name, s) })
		dets[i] = d
	}
	base := []flow.Record{{Key: key(1), Count: 500}, {Key: key(2), Count: 500}}
	spiked := []flow.Record{{Key: key(1), Count: 500}, {Key: key(2), Count: 3000}}
	for _, d := range dets {
		d.Observe(0, ts(0), base)
	}
	for _, d := range dets {
		d.Observe(1, ts(1), spiked)
	}
	alerts := c.AppendNetwideAlerts(nil)
	if len(alerts) != 1 || alerts[0].Key != key(2) || alerts[0].Epoch != 1 {
		t.Fatalf("wired promotion wrong: %v", alerts)
	}
	if alerts[0].Value != 5000 { // 2500 per vantage, summed
		t.Errorf("merged delta %v, want 5000", alerts[0].Value)
	}
	if sunk != 1 {
		t.Errorf("sink saw %d alerts, want 1", sunk)
	}
	// Epoch 0 correlated too (empty summaries): no promotion from it.
	if got := c.Epochs(); got != 2 {
		t.Errorf("Epochs() = %d, want 2", got)
	}
}

// TestSummaryMinDeltaSplitsSurfaces: with SummaryMinDelta below
// ChangeMinDelta, sub-threshold deltas reach the summary sink (the
// correlator's food) but neither the alert stream nor the query-served
// /changes ring, which keep their heavy-change semantics.
func TestSummaryMinDeltaSplitsSurfaces(t *testing.T) {
	d := mustDetector(t, Config{Stages: StageChange, ChangeMinDelta: 1000, SummaryMinDelta: 100})
	var sunk []Change
	d.SetSummarySink(func(s ChangeSummary) { sunk = append(sunk, s.Changes...) })
	d.Observe(0, ts(0), []flow.Record{{Key: key(1), Count: 100}, {Key: key(2), Count: 100}})
	alerts := d.Observe(1, ts(1), []flow.Record{
		{Key: key(1), Count: 2000}, // past ChangeMinDelta: alerts
		{Key: key(2), Count: 400},  // summary-only: 300 in [100, 1000)
	})
	if len(alerts) != 1 || alerts[0].Key != key(1) {
		t.Fatalf("alerts: %v", alerts)
	}
	if len(sunk) != 2 {
		t.Fatalf("summary sink saw %d changes, want 2: %v", len(sunk), sunk)
	}
	sums := d.AppendSummaries(nil)
	if len(sums) != 1 || len(sums[0].Changes) != 1 || sums[0].Changes[0].Key != key(1) {
		t.Fatalf("/changes ring leaked sub-threshold entries: %+v", sums)
	}
}

// TestSummarySubThresholdNotCrowdedOut: a busy epoch with more alerted
// heavy changes than ChangeTopK must still carry the thin sub-threshold
// deltas in its summary — they get their own top-k allotment, or the
// merged-delta promotion path would go blind exactly under load.
func TestSummarySubThresholdNotCrowdedOut(t *testing.T) {
	d := mustDetector(t, Config{
		Stages: StageChange, ChangeMinDelta: 1000, SummaryMinDelta: 100, ChangeTopK: 4,
	})
	var sunk []Change
	d.SetSummarySink(func(s ChangeSummary) { sunk = append(sunk[:0], s.Changes...) })
	base := make([]flow.Record, 0, 12)
	busy := make([]flow.Record, 0, 12)
	for i := 0; i < 10; i++ { // 10 alerted changes > ChangeTopK 4
		base = append(base, flow.Record{Key: key(i), Count: 100})
		busy = append(busy, flow.Record{Key: key(i), Count: uint32(5000 + 100*i)})
	}
	thin := key(100)
	base = append(base, flow.Record{Key: thin, Count: 100})
	busy = append(busy, flow.Record{Key: thin, Count: 600}) // +500: summary-only
	d.Observe(0, ts(0), base)
	d.Observe(1, ts(1), busy)
	found := false
	for _, c := range sunk {
		if c.Key == thin {
			found = true
		}
	}
	if !found {
		t.Fatalf("thin delta crowded out of the summary: %+v", sunk)
	}
	// The /changes ring still holds only alerted entries, capped at
	// ChangeTopK.
	sums := d.AppendSummaries(nil)
	if len(sums) != 1 || len(sums[0].Changes) != 4 {
		t.Fatalf("ring: %+v", sums)
	}
	for _, c := range sums[0].Changes {
		if c.Abs() < 1000 {
			t.Fatalf("sub-threshold entry in /changes ring: %+v", c)
		}
	}
}

// TestMergeDeltasInto pins the netwide fold the correlator builds on:
// key-ordered output, saturating sums, vantage and alerting counts.
func TestMergeDeltasInto(t *testing.T) {
	va := netwide.DeltaView{Name: "a", Deltas: []netwide.Delta{
		{Key: key(1), Prev: 10, Cur: 2000},
		{Key: key(3), Prev: 5, Cur: 105},
	}}
	vb := netwide.DeltaView{Name: "b", Deltas: []netwide.Delta{
		{Key: key(1), Prev: 20, Cur: 3000},
		{Key: key(2), Prev: 0, Cur: 50},
	}}
	netwide.SortDeltasByKey(va.Deltas)
	netwide.SortDeltasByKey(vb.Deltas)
	got := netwide.MergeDeltasInto(nil, 1000, va, vb)
	if len(got) != 3 {
		t.Fatalf("merged %d keys, want 3: %v", len(got), got)
	}
	byKey := map[flow.Key]netwide.CorrelatedDelta{}
	for i, cd := range got {
		if i > 0 && flow.CompareKeys(got[i-1].Key, cd.Key) >= 0 {
			t.Fatalf("output not key-sorted: %v", got)
		}
		byKey[cd.Key] = cd
	}
	k1 := byKey[key(1)]
	if k1.Prev != 30 || k1.Cur != 5000 || k1.Vantages != 2 || k1.Alerting != 2 {
		t.Errorf("key1 fold %+v", k1)
	}
	if k2 := byKey[key(2)]; k2.Vantages != 1 || k2.Alerting != 0 {
		t.Errorf("key2 fold %+v", k2)
	}
	if k3 := byKey[key(3)]; k3.Abs() != 100 || k3.Alerting != 0 {
		t.Errorf("key3 fold %+v", k3)
	}
}
