//go:build race

package detect

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, making AllocsPerRun counts meaningless.
const raceEnabled = true
