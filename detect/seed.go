// Baseline seeding: replaying stored epochs through the detector at
// boot, so forecasting, anomaly baselines and the heavy-change
// comparison base resume warm from a store instead of re-learning from
// scratch after every restart. This is the read-path complement to the
// checkpoint sidecar — a checkpoint restores exact evaluation state,
// seeding reconstructs an approximation from the data itself, which also
// works across detector-version or configuration changes that invalidate
// a checkpoint.
package detect

import (
	"repro/flow"
	"repro/recordstore"
)

// SeedFromHistory replays up to n of src's newest epochs through the
// detector in stored order and returns how many it replayed. The replay
// drives every evaluation stage — per-key forecasts, anomaly baselines,
// the previous-epoch comparison base — but retains and delivers nothing:
// the alert ring, change-summary ring, sinks and metrics all stay
// untouched, because whatever the replayed history alerted on already
// fired when those epochs were live.
//
// Epochs replay with indices 0..n-1, so Epochs() reports n afterwards
// and live evaluation should continue at index n. Rollup epochs replay
// like any other epoch (their truncated tails make the warmed baselines
// slightly conservative). Call before live evaluation starts; not safe
// concurrently with Observe.
func (d *Detector) SeedFromHistory(src recordstore.EpochSource, n int) (int, error) {
	if total := src.Epochs(); n > total {
		n = total
	}
	if n <= 0 {
		return 0, nil
	}
	d.seeding = true
	defer func() { d.seeding = false }()
	first := src.Epochs() - n
	var buf []flow.Record
	for i := 0; i < n; i++ {
		ep, err := src.AppendEpochAt(first+i, buf[:0])
		if err != nil {
			return i, err
		}
		buf = ep.Records
		d.Observe(i, ep.Time, ep.Records)
	}
	return n, nil
}
