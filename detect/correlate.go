// Cross-vantage alert correlation: the network-wide half of the
// detection subsystem. Each vantage point (switch, collector, uplink)
// runs its own Detector; the Correlator consumes their per-epoch change
// summaries and promotes keys to KindNetwide alerts on either of two
// grounds:
//
//   - quorum: the key's change crossed the local alert threshold at >= q
//     vantage points in the same epoch — a coordinated shift a single
//     vantage cannot distinguish from local churn;
//   - merged delta: the key's deltas, summed over the network-wide merge
//     (netwide.MergeDeltasInto), cross a threshold no single vantage's
//     delta reached — the attack that hides by spreading itself thin.
//     For this path the vantage detectors must report sub-threshold
//     deltas (Config.SummaryMinDelta below ChangeMinDelta).
//
// Promoted alerts carry per-vantage evidence (who saw what move) and
// land in a fixed-size ring the query layer serves from
// (/netwide/alerts). Vantages report asynchronously: epochs are held
// open until every registered vantage has reported or the pending window
// fills, whichever comes first, so one dead vantage degrades coverage
// but never wedges correlation.
//
// Epochs are aligned by index: vantage A's epoch N is correlated with
// vantage B's epoch N. The caller owns that alignment — drive every
// vantage's detector from the same rotation (one drain observing all
// views), or number epochs from a shared clock. Wall-clock-free feeds
// whose epoch counters can drift (e.g. independent quiet-gap collectors
// where one vantage misses a window) will correlate different time
// windows under the same index; the per-alert evidence carries each
// vantage's prev/cur so such skew is at least visible in the output.
package detect

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"repro/flow"
	"repro/netwide"
)

// VantageEvidence is one vantage point's contribution to a netwide
// alert.
type VantageEvidence struct {
	// Vantage names the reporting vantage point.
	Vantage string
	// Prev and Cur are the key's counts at this vantage across the epoch
	// boundary.
	Prev, Cur uint32
	// Alerted reports whether this vantage's delta crossed the local
	// alert threshold on its own.
	Alerted bool
}

// Delta returns the vantage's signed change.
func (e VantageEvidence) Delta() int64 { return int64(e.Cur) - int64(e.Prev) }

// NetwideAlert is a KindNetwide alert with its per-vantage evidence.
type NetwideAlert struct {
	Alert
	// Evidence lists the vantages that reported the key, in registration
	// order.
	Evidence []VantageEvidence
}

// CorrelatorConfig parameterizes a Correlator. Vantages is mandatory;
// every other zero value takes a default.
type CorrelatorConfig struct {
	// Vantages names the vantage points expected to report. An epoch is
	// correlated as soon as all of them have reported it.
	Vantages []string
	// Quorum is how many vantages must locally alert on a key to promote
	// it. Default min(2, len(Vantages)).
	Quorum int
	// VantageMinDelta is the per-vantage |delta| that counts as a local
	// alert for quorum purposes — set it to the vantage detectors'
	// ChangeMinDelta. Default 1024.
	VantageMinDelta uint32
	// NetwideMinDelta promotes any key whose merged |delta| reaches it,
	// quorum or not. Default 4 * VantageMinDelta.
	NetwideMinDelta uint32
	// TopK caps promotions per epoch, largest merged |delta| first.
	// Default 16.
	TopK int
	// PendingEpochs is how many incomplete epochs may be held open
	// waiting for straggler vantages before the oldest is correlated
	// with whatever arrived. Default 4.
	PendingEpochs int
	// AlertLog is the capacity of the netwide-alert ring the query layer
	// serves from. Default 1024.
	AlertLog int
}

func (c CorrelatorConfig) withDefaults() CorrelatorConfig {
	if c.Quorum == 0 {
		c.Quorum = 2
		if len(c.Vantages) < 2 {
			c.Quorum = len(c.Vantages)
		}
	}
	if c.VantageMinDelta == 0 {
		c.VantageMinDelta = 1024
	}
	if c.NetwideMinDelta == 0 {
		c.NetwideMinDelta = 4 * c.VantageMinDelta
	}
	if c.TopK == 0 {
		c.TopK = 16
	}
	if c.PendingEpochs == 0 {
		c.PendingEpochs = 4
	}
	if c.AlertLog == 0 {
		c.AlertLog = 1024
	}
	return c
}

// pendingEpoch is one epoch awaiting reports.
type pendingEpoch struct {
	epoch   int
	time    time.Time
	got     []bool
	n       int
	changes [][]Change // per-vantage, key-sorted copies
}

// Correlator folds per-vantage change summaries into network-wide
// alerts. ObserveSummary is safe from any goroutine (each vantage's
// collector calls it from its own epoch loop); the query accessors are
// safe concurrently with reporting.
type Correlator struct {
	cfg        CorrelatorConfig
	vantageIdx map[string]int

	mu      sync.Mutex
	pending []*pendingEpoch // ordered by epoch ascending
	spare   []*pendingEpoch // recycled entries, change buffers kept
	merged  []netwide.CorrelatedDelta
	views   []netwide.DeltaView
	alerts  ring[NetwideAlert]
	fresh   []NetwideAlert // per-epoch sink scratch
	done    int            // highest epoch correlated + 1 (late reports drop)
	started bool           // true once any epoch correlated (gates `done`)
	epochs  uint64         // epochs correlated
	late    uint64         // summaries for already-correlated epochs

	// sink receives each correlated epoch's promoted alerts; it runs on
	// the reporting goroutine that completed the epoch.
	sink func([]NetwideAlert)
}

// NewCorrelator builds a correlator for a fixed vantage set.
func NewCorrelator(cfg CorrelatorConfig) (*Correlator, error) {
	if len(cfg.Vantages) == 0 {
		return nil, fmt.Errorf("detect: correlator needs at least one vantage")
	}
	cfg = cfg.withDefaults()
	if cfg.Quorum < 1 || cfg.Quorum > len(cfg.Vantages) {
		return nil, fmt.Errorf("detect: quorum %d out of range for %d vantages",
			cfg.Quorum, len(cfg.Vantages))
	}
	c := &Correlator{
		cfg:        cfg,
		vantageIdx: make(map[string]int, len(cfg.Vantages)),
		alerts:     newRing[NetwideAlert](cfg.AlertLog),
	}
	for i, v := range cfg.Vantages {
		if _, dup := c.vantageIdx[v]; dup {
			return nil, fmt.Errorf("detect: duplicate vantage %q", v)
		}
		c.vantageIdx[v] = i
	}
	return c, nil
}

// Config returns the effective (defaulted) configuration.
func (c *Correlator) Config() CorrelatorConfig { return c.cfg }

// SetSink registers a callback receiving each correlated epoch's fresh
// netwide alerts. It runs on the reporting goroutine that completed the
// epoch, under the correlator's lock: it must not retain the slice and
// must not call back into the Correlator — hand off to a channel or
// copy, as with the Detector sink. Call before reporting begins.
func (c *Correlator) SetSink(fn func([]NetwideAlert)) { c.sink = fn }

// ObserveSummary records one vantage's change summary for one epoch —
// the Detector summary-sink surface (wire it with
// detector.SetSummarySink(func(s ChangeSummary) { c.ObserveSummary(name, s) })).
// The summary's Changes slice is copied, honoring the sink contract.
// Reports from unregistered vantages, duplicates, and epochs already
// correlated are dropped (the latter counted by Late).
func (c *Correlator) ObserveSummary(vantage string, s ChangeSummary) {
	vi, ok := c.vantageIdx[vantage]
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started && s.Epoch < c.done {
		c.late++
		return
	}
	p := c.pendingFor(s.Epoch, s.Time)
	if p.got[vi] {
		return
	}
	p.got[vi] = true
	p.n++
	dst := p.changes[vi][:0]
	p.changes[vi] = append(dst, s.Changes...)
	netwide.SortDeltasByKey(p.changes[vi])
	if p.n == len(c.cfg.Vantages) {
		c.correlateOldestThrough(p.epoch)
		return
	}
	// A straggler vantage must not hold the window open forever: once
	// more than PendingEpochs epochs are pending, the oldest correlates
	// with whatever arrived.
	if len(c.pending) > c.cfg.PendingEpochs {
		c.correlateOldestThrough(c.pending[0].epoch)
	}
}

// pendingFor finds or creates the pending entry for an epoch, keeping
// the pending list ordered. Called under mu.
func (c *Correlator) pendingFor(epoch int, ts time.Time) *pendingEpoch {
	i, ok := slices.BinarySearchFunc(c.pending, epoch, func(p *pendingEpoch, e int) int {
		return p.epoch - e
	})
	if ok {
		return c.pending[i]
	}
	var p *pendingEpoch
	if n := len(c.spare); n > 0 {
		p = c.spare[n-1]
		c.spare = c.spare[:n-1]
		for v := range p.got {
			p.got[v] = false
		}
		p.n = 0
	} else {
		p = &pendingEpoch{
			got:     make([]bool, len(c.cfg.Vantages)),
			changes: make([][]Change, len(c.cfg.Vantages)),
		}
	}
	p.epoch, p.time = epoch, ts
	c.pending = slices.Insert(c.pending, i, p)
	return p
}

// correlateOldestThrough correlates every pending epoch up to and
// including `through`, in order — completing an epoch also flushes any
// older stragglers so alerts stay chronological. Called under mu.
func (c *Correlator) correlateOldestThrough(through int) {
	for len(c.pending) > 0 && c.pending[0].epoch <= through {
		p := c.pending[0]
		c.pending = c.pending[:copy(c.pending, c.pending[1:])]
		c.correlate(p)
		c.spare = append(c.spare, p)
	}
}

// correlate merges one epoch's per-vantage deltas and promotes. Called
// under mu; the sink runs after the ring push, still under mu (the sink
// contract already demands handing off, as with the Detector).
func (c *Correlator) correlate(p *pendingEpoch) {
	c.views = c.views[:0]
	for v, got := range p.got {
		if !got {
			continue
		}
		c.views = append(c.views, netwide.DeltaView{
			Name: c.cfg.Vantages[v], Deltas: p.changes[v],
		})
	}
	c.merged = netwide.MergeDeltasInto(c.merged[:0], c.cfg.VantageMinDelta, c.views...)

	// Promote by quorum or merged magnitude, keep the TopK largest.
	promoted := c.merged[:0]
	for _, cd := range c.merged {
		if cd.Alerting >= c.cfg.Quorum || cd.Abs() >= c.cfg.NetwideMinDelta {
			promoted = append(promoted, cd)
		}
	}
	slices.SortFunc(promoted, func(a, b netwide.CorrelatedDelta) int {
		if a.Abs() != b.Abs() {
			if a.Abs() > b.Abs() {
				return -1
			}
			return 1
		}
		return flow.CompareKeys(a.Key, b.Key)
	})
	if len(promoted) > c.cfg.TopK {
		promoted = promoted[:c.cfg.TopK]
	}

	c.fresh = c.fresh[:0]
	for _, cd := range promoted {
		quorumScore := float64(cd.Alerting) / float64(c.cfg.Quorum)
		deltaScore := float64(cd.Abs()) / float64(c.cfg.NetwideMinDelta)
		score := quorumScore
		if deltaScore > score {
			score = deltaScore
		}
		sev := SeverityWarning
		if score >= 2 {
			sev = SeverityCritical
		}
		a := NetwideAlert{
			Alert: Alert{
				Kind: KindNetwide, Severity: sev, Epoch: p.epoch, Time: p.time,
				Key: cd.Key, Value: float64(cd.Signed()), Baseline: float64(cd.Prev),
				Score: score,
			},
			Evidence: c.evidence(p, cd.Key),
		}
		c.alerts.push(a)
		c.fresh = append(c.fresh, a)
	}
	c.epochs++
	c.done = p.epoch + 1
	c.started = true
	if c.sink != nil && len(c.fresh) > 0 {
		c.sink(c.fresh)
	}
}

// evidence gathers the per-vantage deltas of one promoted key; promoted
// keys are few, so the binary searches cost nothing against the merge.
func (c *Correlator) evidence(p *pendingEpoch, key flow.Key) []VantageEvidence {
	ev := make([]VantageEvidence, 0, len(c.views))
	for v, got := range p.got {
		if !got {
			continue
		}
		deltas := p.changes[v]
		i, ok := slices.BinarySearchFunc(deltas, key, func(dl Change, k flow.Key) int {
			return flow.CompareKeys(dl.Key, k)
		})
		if !ok {
			continue
		}
		ev = append(ev, VantageEvidence{
			Vantage: c.cfg.Vantages[v],
			Prev:    deltas[i].Prev,
			Cur:     deltas[i].Cur,
			Alerted: deltas[i].Abs() >= c.cfg.VantageMinDelta,
		})
	}
	return ev
}

// AppendNetwideAlerts appends the retained netwide alerts to dst, oldest
// first, with evidence deep-copied so the caller's view cannot race
// later correlation. Safe concurrently with reporting.
func (c *Correlator) AppendNetwideAlerts(dst []NetwideAlert) []NetwideAlert {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(dst)
	dst = c.alerts.appendAll(dst)
	for i := n; i < len(dst); i++ {
		dst[i].Evidence = slices.Clone(dst[i].Evidence)
	}
	return dst
}

// AppendAlerts appends the retained netwide alerts to dst as plain
// alerts (evidence stripped), oldest first.
func (c *Correlator) AppendAlerts(dst []Alert) []Alert {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.alerts.appendAll(nil) {
		dst = append(dst, a.Alert)
	}
	return dst
}

// Epochs returns how many epochs have been correlated.
func (c *Correlator) Epochs() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs
}

// Late returns how many summaries arrived for epochs already correlated
// (a vantage lagging past the pending window — its evidence was lost).
func (c *Correlator) Late() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.late
}
