// Robust per-metric baselines for the anomaly detector. Each epoch
// aggregate (total packets, distinct flows, entropy) is scored against an
// EWMA center with a MAD scale over a sliding window: the EWMA tracks
// slow drift in the traffic level, the median absolute deviation gives a
// spread estimate that one anomalous epoch cannot poison the way a
// standard deviation would.
package detect

import (
	"math"
	"slices"
)

// madScale converts a median absolute deviation into a standard
// deviation equivalent for normally distributed residuals.
const madScale = 1.4826

// baseline scores one epoch aggregate against its own history.
type baseline struct {
	alpha   float64   // EWMA smoothing factor
	ewma    float64   // smoothed center
	window  []float64 // ring of recent observations
	n       int       // observations absorbed (caps at len(window))
	next    int       // ring write position
	scratch []float64 // sort scratch for the median passes
}

// newBaseline builds a baseline over a window of size w.
func newBaseline(w int, alpha float64) *baseline {
	return &baseline{
		alpha:   alpha,
		window:  make([]float64, w),
		scratch: make([]float64, 0, w),
	}
}

// observe scores x against the current baseline, then absorbs it. ok is
// false until minObs prior epochs have been absorbed (the warmup), during
// which score is 0. The score is a robust z-score: |x-EWMA| over the
// MAD-derived spread of the window.
func (b *baseline) observe(x float64, minObs int) (score, center float64, ok bool) {
	if b.n >= minObs {
		center = b.ewma
		spread := madScale * b.mad(center)
		// A perfectly flat history has zero MAD; floor the spread at a
		// fraction of the center so constant traffic still needs a real
		// shift (not float noise) to alert.
		floor := 0.01 * math.Abs(center)
		if floor < 1e-9 {
			floor = 1e-9
		}
		if spread < floor {
			spread = floor
		}
		score = math.Abs(x-center) / spread
		ok = true
	}
	b.push(x)
	return score, center, ok
}

// mad returns the median absolute deviation of the window around center.
func (b *baseline) mad(center float64) float64 {
	b.scratch = b.scratch[:0]
	limit := b.n
	if limit > len(b.window) {
		limit = len(b.window)
	}
	for i := 0; i < limit; i++ {
		b.scratch = append(b.scratch, math.Abs(b.window[i]-center))
	}
	if len(b.scratch) == 0 {
		return 0
	}
	slices.Sort(b.scratch)
	return b.scratch[len(b.scratch)/2]
}

// push absorbs x into the EWMA and the window ring.
func (b *baseline) push(x float64) {
	if b.n == 0 {
		b.ewma = x
	} else {
		b.ewma += b.alpha * (x - b.ewma)
	}
	b.window[b.next] = x
	b.next = (b.next + 1) % len(b.window)
	b.n++
}
