// DistinctSketch: the small cardinality summary the superspreader
// detector uses to count distinct destinations per source. A source that
// touches many distinct hosts (a scanner, a DDoS reflector fan-out) and a
// source with many flows to one host (a busy client hitting many ports)
// both produce long runs of records; only the former should alert. The
// sketch separates the two in constant memory per evaluation.
package detect

import (
	"math"

	"repro/internal/hashing"
)

// sketchBits is the bitmap size. Linear counting with m bits estimates
// cardinalities up to ~m with low error as long as the map is not
// saturated; 2048 bits (256 B) keeps per-source fanout estimates within
// a few percent across any realistic superspreader threshold.
const sketchBits = 2048

// sketchSeed salts the destination hash independently of every other
// hash family in the pipeline.
const sketchSeed = 0xd15c

// DistinctSketch is a fixed-size bitmap cardinality estimator (linear
// counting): each added value sets one hashed bit, and the estimate is
// recovered from the fraction of bits still zero. The zero value is
// ready to use; Reset recycles it between evaluations.
type DistinctSketch struct {
	bits [sketchBits / 64]uint64
	set  int
}

// Add observes one 32-bit value (a destination address).
func (s *DistinctSketch) Add(v uint32) {
	h := hashing.KeyHash(sketchSeed, uint64(v), 0) % sketchBits
	w, b := h>>6, uint64(1)<<(h&63)
	if s.bits[w]&b == 0 {
		s.bits[w] |= b
		s.set++
	}
}

// Estimate returns the linear-counting cardinality estimate
// m·ln(m/zeros). A saturated bitmap (no zero bits) returns m·ln(m), the
// estimator's ceiling — any fanout that large is far past every
// threshold anyway.
func (s *DistinctSketch) Estimate() int {
	z := sketchBits - s.set
	if z == 0 {
		z = 1
	}
	return int(sketchBits*math.Log(float64(sketchBits)/float64(z)) + 0.5)
}

// Set returns the number of set bits (the raw occupancy).
func (s *DistinctSketch) Set() int { return s.set }

// Reset clears the sketch for the next evaluation.
func (s *DistinctSketch) Reset() {
	if s.set == 0 {
		return
	}
	s.bits = [sketchBits / 64]uint64{}
	s.set = 0
}
