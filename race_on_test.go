//go:build race

package repro

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, making AllocsPerRun counts meaningless.
const raceEnabled = true
